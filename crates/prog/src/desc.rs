//! Typed syscall descriptions — the syzlang-lite layer (§2.6.1).
//!
//! SYZKALLER's supporting libraries "define the syntax for each syscall" and
//! introduce an intermediate representation handling pointers, resource
//! reuse between calls, and protocol variants. This module provides the
//! equivalent: every fuzzable syscall is described by its argument types,
//! the resource kind it produces (if any), and the kernel interface group
//! it belongs to (used by the add-call bias, §2.6.1 item 2).

/// Kinds of kernel resources that flow between calls (`r0 = socket(…)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResKind {
    /// A regular-file descriptor.
    FileFd,
    /// A socket descriptor.
    SockFd,
    /// An inotify instance descriptor.
    InotifyFd,
    /// A pipe/eventfd/epoll descriptor.
    PipeFd,
    /// Any descriptor at all.
    AnyFd,
    /// A process id.
    Pid,
}

impl ResKind {
    /// Whether a produced resource of kind `produced` satisfies a consumer
    /// expecting `self`. `AnyFd` accepts every descriptor kind.
    pub fn accepts(self, produced: ResKind) -> bool {
        if self == produced {
            return true;
        }
        matches!(
            (self, produced),
            (
                ResKind::AnyFd,
                ResKind::FileFd | ResKind::SockFd | ResKind::InotifyFd | ResKind::PipeFd
            )
        )
    }
}

/// Kernel interface groups, used to bias related-call selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterfaceGroup {
    /// File and directory operations.
    File,
    /// Memory management.
    Memory,
    /// Sockets and networking.
    Net,
    /// Signals and process control.
    Signal,
    /// Process identity and limits.
    Process,
    /// Timers and sleeping.
    Time,
    /// Extended attributes.
    Xattr,
    /// Synchronisation (sync family).
    Sync,
}

/// The type of one syscall argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgType {
    /// A constant the call always receives.
    Const(u64),
    /// An integer drawn from a range (inclusive).
    IntRange {
        /// Lower bound.
        min: u64,
        /// Upper bound.
        max: u64,
    },
    /// A bitset built from these flag values.
    Flags(&'static [u64]),
    /// One of an enumerated set of values.
    OneOf(&'static [u64]),
    /// A resource consumed from an earlier call.
    Res(ResKind),
    /// A buffer length.
    Len,
    /// A pointer into (pretend) user memory.
    Ptr,
    /// A filesystem path drawn from these options.
    Path(&'static [&'static str]),
    /// An extended-attribute name.
    XattrName,
    /// A signal number.
    SignalNum,
}

/// One named argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name, for rendering.
    pub name: &'static str,
    /// Argument type.
    pub ty: ArgType,
}

/// A complete syscall description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallDesc {
    /// Syscall name (must exist in `torpedo_kernel::SYSCALL_TABLE`).
    pub name: &'static str,
    /// x86-64 syscall number.
    pub nr: u32,
    /// Argument specifications, in order.
    pub args: Vec<ArgSpec>,
    /// The resource kind the return value carries, if any.
    pub produces: Option<ResKind>,
    /// Interface group for bias computation.
    pub group: InterfaceGroup,
    /// Whether the call tends to block indefinitely — candidates for the
    /// §4.1.2 generation denylist.
    pub blocking: bool,
}

impl SyscallDesc {
    /// Indexes of arguments that consume a resource, with their kinds.
    pub fn res_args(&self) -> Vec<(usize, ResKind)> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a.ty {
                ArgType::Res(kind) => Some((i, kind)),
                _ => None,
            })
            .collect()
    }
}

/// Interesting integer values SYZKALLER's mutator prefers: NULL, all-ones
/// bitfields, powers of two, off-by-ones (§2.6.1 item 4).
pub const INTERESTING: &[u64] = &[
    0,
    1,
    2,
    3,
    7,
    8,
    0xf,
    0x20,
    0x40,
    0xff,
    0x100,
    0xfff,
    0x1000,
    0xffff,
    0x8000_0000,
    0xffff_ffff,
    u64::MAX,
    u64::MAX - 1,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anyfd_accepts_all_descriptor_kinds() {
        for kind in [
            ResKind::FileFd,
            ResKind::SockFd,
            ResKind::InotifyFd,
            ResKind::PipeFd,
        ] {
            assert!(ResKind::AnyFd.accepts(kind), "{kind:?}");
        }
        assert!(!ResKind::AnyFd.accepts(ResKind::Pid));
        assert!(!ResKind::FileFd.accepts(ResKind::SockFd));
        assert!(ResKind::SockFd.accepts(ResKind::SockFd));
    }

    #[test]
    fn res_args_finds_resource_positions() {
        let desc = SyscallDesc {
            name: "sendto",
            nr: 44,
            args: vec![
                ArgSpec {
                    name: "fd",
                    ty: ArgType::Res(ResKind::SockFd),
                },
                ArgSpec {
                    name: "buf",
                    ty: ArgType::Ptr,
                },
                ArgSpec {
                    name: "len",
                    ty: ArgType::Len,
                },
            ],
            produces: None,
            group: InterfaceGroup::Net,
            blocking: false,
        };
        assert_eq!(desc.res_args(), vec![(0, ResKind::SockFd)]);
    }

    #[test]
    fn interesting_values_include_extremes() {
        assert!(INTERESTING.contains(&0));
        assert!(INTERESTING.contains(&u64::MAX));
        assert!(INTERESTING.len() > 10);
    }
}
