//! Coverage-preserving minimization (the "minimization" stage of
//! Figure 3.2): procedurally remove calls to find the smallest program that
//! still produces the property of interest.
//!
//! The property is abstracted as a predicate so the same engine serves both
//! SYZKALLER-style coverage minimization and TORPEDO's oracle-violation
//! minimization (Algorithm 3, implemented on top of this in
//! `torpedo-core`).

use crate::program::Program;

/// Statistics from one minimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinimizeStats {
    /// Calls removed.
    pub removed: usize,
    /// Predicate evaluations performed.
    pub evaluations: usize,
}

/// Shrink `program` to a minimal subsequence for which `still_interesting`
/// holds, scanning back-to-front exactly like Algorithm 3 of the paper.
///
/// `still_interesting` receives each candidate program; it must return
/// `true` when the candidate still exhibits the original behaviour. The
/// input program is assumed interesting (callers verify first).
pub fn minimize<F>(program: &mut Program, mut still_interesting: F) -> MinimizeStats
where
    F: FnMut(&Program) -> bool,
{
    let mut stats = MinimizeStats::default();
    let mut idx = program.len();
    while idx > 0 {
        idx -= 1;
        if program.len() <= 1 {
            break;
        }
        let mut candidate = program.clone();
        candidate.remove_call(idx);
        stats.evaluations += 1;
        if still_interesting(&candidate) {
            *program = candidate;
            stats.removed += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArgValue, Call};
    use crate::table::{build_table, find};

    /// Build a program of `names`, with no resource refs.
    fn prog_of(names: &[&str]) -> Program {
        let table = build_table();
        Program {
            calls: names
                .iter()
                .map(|n| {
                    let desc = find(&table, n).unwrap();
                    let args = table[desc].args.iter().map(|_| ArgValue::Int(0)).collect();
                    Call { desc, args }
                })
                .collect(),
        }
    }

    #[test]
    fn minimize_keeps_only_needed_call() {
        let table = build_table();
        let sync_idx = find(&table, "sync").unwrap();
        let mut prog = prog_of(&["getpid", "sync", "alarm", "uname"]);
        let stats = minimize(&mut prog, |p| p.calls.iter().any(|c| c.desc == sync_idx));
        assert_eq!(prog.len(), 1);
        assert_eq!(prog.calls[0].desc, sync_idx);
        assert_eq!(stats.removed, 3);
    }

    #[test]
    fn minimize_preserves_pairs() {
        let table = build_table();
        let socket = find(&table, "socket").unwrap();
        let sendto = find(&table, "sendto").unwrap();
        let mut prog = prog_of(&["getpid", "socket", "uname", "sendto", "alarm"]);
        let needs_both = |p: &Program| {
            p.calls.iter().any(|c| c.desc == socket) && p.calls.iter().any(|c| c.desc == sendto)
        };
        minimize(&mut prog, needs_both);
        assert_eq!(prog.len(), 2);
        assert!(needs_both(&prog));
    }

    #[test]
    fn never_shrinks_below_one_call() {
        let mut prog = prog_of(&["sync"]);
        // A pathological predicate that accepts everything.
        minimize(&mut prog, |_| true);
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn uninteresting_removals_are_rolled_back() {
        let mut prog = prog_of(&["getpid", "sync", "alarm"]);
        let original = prog.clone();
        let stats = minimize(&mut prog, |_| false);
        assert_eq!(prog, original);
        assert_eq!(stats.removed, 0);
        assert!(stats.evaluations > 0);
    }

    #[test]
    fn evaluation_count_bounded_by_length() {
        let mut prog = prog_of(&["getpid", "sync", "alarm", "uname", "times"]);
        let stats = minimize(&mut prog, |_| false);
        assert!(stats.evaluations <= 5);
    }
}
