//! `torpedo-prog`: the SYZKALLER-style program layer (§2.6).
//!
//! Typed syscall descriptions, the program intermediate representation with
//! cross-call resource flow, text (de)serialization for seeds, biased
//! generation, the four genetic operators (splice / add / remove /
//! mutate-arg), coverage-signal tracking, the corpus, the prioritized work
//! queue, and a generic shrinking engine.
//!
//! # Examples
//! ```
//! use std::collections::HashSet;
//! use rand::{rngs::StdRng, SeedableRng};
//! use torpedo_prog::{build_table, gen_program, Mutator};
//!
//! let table = build_table();
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut prog = gen_program(&table, 8, &HashSet::new(), &mut rng);
//! Mutator::default().mutate(&mut prog, &table, None, &mut rng);
//! prog.validate(&table)?;
//! # Ok::<(), torpedo_prog::ValidationError>(())
//! ```

pub mod bias;
pub mod cgen;
pub mod corpus;
pub mod desc;
pub mod distance;
pub mod gen;
pub mod id;
pub mod minimize;
pub mod mutate;
pub mod program;
pub mod queue;
pub mod serialize;
pub mod signal;
pub mod table;

pub use cgen::{generate_c, CGenOptions};
pub use corpus::{Corpus, CorpusItem};
pub use desc::{ArgSpec, ArgType, InterfaceGroup, ResKind, SyscallDesc};
pub use distance::{channel_triggers, DirectedTarget, DistanceMap, CHANNEL_TRIGGERS};
pub use gen::{gen_program, gen_program_directed};
pub use id::ProgramId;
pub use minimize::{minimize, MinimizeStats};
pub use mutate::{MutatePolicy, MutationOp, Mutator};
pub use program::{ArgValue, Call, Program, ValidationError};
pub use queue::{WorkItem, WorkKind, WorkQueue};
pub use serialize::{deserialize, deserialize_with, serialize, ParseError};
pub use signal::{CoverageSet, ProgramCoverage};
pub use table::{build_table, find, NameIndex, PATHS, SOCKET_FAMILIES, XATTR_NAMES};
