//! The program corpus: the manager-side collection of retained programs
//! (§2.6.2), extended with TORPEDO's oracle-score metadata — only "the set
//! of mutated workloads that generated the most adversarial resource usage
//! is recorded into the corpus" (§3.5.2).

use std::sync::Arc;

use crate::program::Program;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusItem {
    /// The program — a copy-on-write handle shared with the campaign
    /// batch it was admitted from.
    pub program: Arc<Program>,
    /// Distinct coverage signals this program contributed when admitted.
    pub new_signals: usize,
    /// Best oracle score observed for a batch containing this program.
    pub best_score: f64,
    /// Whether an oracle ever flagged this program as adversarial.
    pub flagged: bool,
}

/// The corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    items: Vec<CorpusItem>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus { items: Vec::new() }
    }

    /// Admit a program.
    pub fn add(&mut self, item: CorpusItem) {
        self.items.push(item);
    }

    /// All items.
    pub fn items(&self) -> &[CorpusItem] {
        &self.items
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A donor program for splicing, selected by `pick` in `[0, 1)`.
    /// Returned as the shared handle so callers can clone it for free.
    pub fn donor(&self, pick: f64) -> Option<&Arc<Program>> {
        if self.items.is_empty() {
            return None;
        }
        let idx = ((pick.clamp(0.0, 0.999_999)) * self.items.len() as f64) as usize;
        Some(&self.items[idx].program)
    }

    /// Items flagged as adversarial, most adversarial first.
    pub fn flagged(&self) -> Vec<&CorpusItem> {
        let mut out: Vec<&CorpusItem> = self.items.iter().filter(|i| i.flagged).collect();
        out.sort_by(|a, b| {
            b.best_score
                .partial_cmp(&a.best_score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Update the best score for item `index`, keeping the maximum.
    pub fn record_score(&mut self, index: usize, score: f64, flagged: bool) {
        if let Some(item) = self.items.get_mut(index) {
            item.best_score = item.best_score.max(score);
            item.flagged |= flagged;
        }
    }

    /// Serialize the corpus to its on-disk text form: one header comment
    /// plus the program per entry, entries separated by blank lines — the
    /// syz-db-style persistence that lets campaigns resume with the corpus
    /// of a previous run.
    pub fn save(&self, table: &[crate::desc::SyscallDesc]) -> String {
        let mut out = String::new();
        for item in &self.items {
            out.push_str(&format!(
                "# signals={} score={:.4} flagged={}\n",
                item.new_signals, item.best_score, item.flagged
            ));
            out.push_str(&crate::serialize::serialize(&item.program, table));
            out.push('\n');
        }
        out
    }

    /// Parse a corpus back from [`Corpus::save`]'s format.
    ///
    /// # Errors
    /// The underlying [`crate::serialize::ParseError`] with the entry index.
    pub fn load(
        text: &str,
        table: &[crate::desc::SyscallDesc],
    ) -> Result<Corpus, (usize, crate::serialize::ParseError)> {
        let mut corpus = Corpus::new();
        for (idx, chunk) in text.split("\n\n").enumerate() {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            let mut new_signals = 0usize;
            let mut best_score = 0.0f64;
            let mut flagged = false;
            let mut body = String::new();
            for line in chunk.lines() {
                if let Some(meta) = line.strip_prefix("# ") {
                    for field in meta.split_whitespace() {
                        if let Some(v) = field.strip_prefix("signals=") {
                            new_signals = v.parse().unwrap_or(0);
                        } else if let Some(v) = field.strip_prefix("score=") {
                            best_score = v.parse().unwrap_or(0.0);
                        } else if let Some(v) = field.strip_prefix("flagged=") {
                            flagged = v == "true";
                        }
                    }
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            let program = crate::serialize::deserialize(&body, table).map_err(|e| (idx, e))?;
            corpus.add(CorpusItem {
                program: Arc::new(program),
                new_signals,
                best_score,
                flagged,
            });
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(score: f64, flagged: bool) -> CorpusItem {
        CorpusItem {
            program: Arc::new(Program::new()),
            new_signals: 1,
            best_score: score,
            flagged,
        }
    }

    #[test]
    fn add_and_len() {
        let mut corpus = Corpus::new();
        assert!(corpus.is_empty());
        corpus.add(item(1.0, false));
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn donor_maps_unit_interval() {
        let mut corpus = Corpus::new();
        assert!(corpus.donor(0.5).is_none());
        corpus.add(item(0.0, false));
        corpus.add(item(0.0, false));
        assert!(corpus.donor(0.0).is_some());
        assert!(corpus.donor(0.999).is_some());
        assert!(corpus.donor(1.5).is_some(), "clamped");
    }

    #[test]
    fn flagged_sorted_by_score() {
        let mut corpus = Corpus::new();
        corpus.add(item(1.0, true));
        corpus.add(item(9.0, true));
        corpus.add(item(5.0, false));
        let flagged = corpus.flagged();
        assert_eq!(flagged.len(), 2);
        assert_eq!(flagged[0].best_score, 9.0);
    }

    #[test]
    fn save_load_round_trip() {
        use crate::table::build_table;
        let table = build_table();
        let mut corpus = Corpus::new();
        let program = crate::serialize::deserialize(
            "r0 = socket(0x10, 0x3, 0x9)\nsendto(r0, 0x0, 0x24, 0x0, 0x0, 0xc)\n",
            &table,
        )
        .unwrap();
        corpus.add(CorpusItem {
            program: Arc::new(program),
            new_signals: 4,
            best_score: 31.25,
            flagged: true,
        });
        corpus.add(CorpusItem {
            program: Arc::new(crate::serialize::deserialize("sync()\n", &table).unwrap()),
            new_signals: 1,
            best_score: 12.0,
            flagged: false,
        });
        let text = corpus.save(&table);
        let back = Corpus::load(&text, &table).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.items()[0].new_signals, 4);
        assert!((back.items()[0].best_score - 31.25).abs() < 1e-9);
        assert!(back.items()[0].flagged);
        assert_eq!(back.items()[0].program, corpus.items()[0].program);
        assert!(!back.items()[1].flagged);
    }

    #[test]
    fn load_reports_bad_entry_index() {
        use crate::table::build_table;
        let table = build_table();
        let text = "# signals=1 score=1 flagged=false\nsync()\n\n# signals=1 score=1 flagged=false\nbogus()\n";
        let err = Corpus::load(text, &table).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn record_score_keeps_max_and_sticky_flag() {
        let mut corpus = Corpus::new();
        corpus.add(item(5.0, false));
        corpus.record_score(0, 2.0, true);
        assert_eq!(corpus.items()[0].best_score, 5.0);
        assert!(corpus.items()[0].flagged);
        corpus.record_score(0, 8.0, false);
        assert_eq!(corpus.items()[0].best_score, 8.0);
        assert!(corpus.items()[0].flagged, "flag is sticky");
    }
}
