//! Directed fuzzing support: static distance-to-target over the syscall
//! description table.
//!
//! G-Fuzz-style directed greybox fuzzing needs a cheap, deterministic
//! estimate of "how far" a candidate syscall is from the behaviour the
//! campaign is hunting. The table gives us a natural interaction graph —
//! two descriptions are adjacent when they share an [`InterfaceGroup`]
//! or one produces a resource the other consumes — and the simulated
//! kernel's deferral channels give us target sets: the syscalls whose
//! semantics can trigger each channel. A single BFS from the target set
//! yields per-syscall hop counts, which [`DistanceMap::multiplier`] folds
//! into the §2.6.1 bias weights.
//!
//! Everything here is computed once per campaign from static data: no RNG,
//! no kernel state, so directed campaigns keep the two-u64 determinism
//! contract (the map is a pure function of the rendered config).

use crate::desc::{ArgType, InterfaceGroup, SyscallDesc};

/// What a directed campaign steers toward.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DirectedTarget {
    /// A single syscall by table name (e.g. `"socket"`).
    Syscall(String),
    /// A deferral channel by wire name (see [`CHANNEL_TRIGGERS`]); the
    /// target set is every syscall whose semantics can trigger it.
    Channel(String),
}

impl DirectedTarget {
    /// Parse the rendered form: `syscall:<name>` or `channel:<name>`.
    pub fn parse(text: &str) -> Option<DirectedTarget> {
        let (kind, name) = text.split_once(':')?;
        if name.is_empty() {
            return None;
        }
        match kind {
            "syscall" => Some(DirectedTarget::Syscall(name.to_string())),
            "channel" => Some(DirectedTarget::Channel(name.to_string())),
            _ => None,
        }
    }

    /// Stable rendering, inverse of [`DirectedTarget::parse`]. Used by the
    /// campaign-config fingerprint, so it must stay byte-stable.
    pub fn render(&self) -> String {
        match self {
            DirectedTarget::Syscall(name) => format!("syscall:{name}"),
            DirectedTarget::Channel(name) => format!("channel:{name}"),
        }
    }
}

/// Deferral-channel wire names mapped to the syscalls that can trigger
/// them. This is a documented mirror of the simulated kernel's semantics
/// (`torpedo-kernel`'s syscall modules), kept here so the prog layer does
/// not need kernel state to compute distances:
///
/// - `io-flush`: kworker writeback flush from sync-family calls.
/// - `coredump`: usermodehelper core_pattern exec from fatal signals.
/// - `modprobe`: usermodehelper module requests for missing socket
///   families/protocols.
/// - `audit`: kauditd/journald processing of audit netlink records.
/// - `softirq`: inline rx/tx completion work on the interrupted core.
/// - `net-softirq`: `ksoftirqd` amplification once transmits exceed the
///   NAPI budget.
/// - `writeback`: dirty-page flush + kswapd reclaim under memory-cgroup
///   pressure.
/// - `tty-flush`: framework console overhead; no program syscall triggers
///   it, so targeting it leaves every distance unreachable (multiplier 1).
pub const CHANNEL_TRIGGERS: &[(&str, &[&str])] = &[
    ("io-flush", &["sync", "fsync", "fdatasync", "msync"]),
    (
        "coredump",
        &["rt_sigreturn", "rseq", "fallocate", "ftruncate"],
    ),
    ("modprobe", &["socket"]),
    ("audit", &["sendto"]),
    ("softirq", &["sendto"]),
    ("net-softirq", &["sendto"]),
    ("writeback", &["mmap", "mlock"]),
    ("tty-flush", &[]),
];

/// The syscall names that can trigger `channel`, or `None` for an unknown
/// channel name.
pub fn channel_triggers(channel: &str) -> Option<&'static [&'static str]> {
    CHANNEL_TRIGGERS
        .iter()
        .find(|(name, _)| *name == channel)
        .map(|(_, triggers)| *triggers)
}

/// Per-syscall hop counts to a [`DirectedTarget`], plus the bias
/// multiplier derived from them.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMap {
    distances: Vec<Option<u32>>,
}

impl DistanceMap {
    /// Distance decay base: each hop away from the target halves the
    /// bonus, so `multiplier = 1 + BOOST * 0.5^d`.
    pub const BOOST: f64 = 8.0;

    /// BFS from the target set over the table's interaction graph
    /// (shared interface group, or producer/consumer resource edge).
    /// Unknown syscall or channel names yield an all-unreachable map —
    /// directed mode degrades to undirected rather than erroring.
    pub fn build(table: &[SyscallDesc], target: &DirectedTarget) -> DistanceMap {
        let seeds: Vec<usize> = match target {
            DirectedTarget::Syscall(name) => table
                .iter()
                .enumerate()
                .filter(|(_, d)| d.name == name.as_str())
                .map(|(i, _)| i)
                .collect(),
            DirectedTarget::Channel(name) => {
                let triggers = channel_triggers(name).unwrap_or(&[]);
                table
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| triggers.contains(&d.name))
                    .map(|(i, _)| i)
                    .collect()
            }
        };
        let mut distances: Vec<Option<u32>> = vec![None; table.len()];
        let mut frontier = seeds;
        for seed in &frontier {
            distances[*seed] = Some(0);
        }
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &at in &frontier {
                for (i, dist) in distances.iter_mut().enumerate() {
                    if dist.is_none() && adjacent(&table[at], &table[i]) {
                        *dist = Some(depth);
                        next.push(i);
                    }
                }
            }
            frontier = next;
        }
        DistanceMap { distances }
    }

    /// Hop count from syscall `idx` to the target set (`Some(0)` for the
    /// targets themselves, `None` when unreachable).
    pub fn distance(&self, idx: usize) -> Option<u32> {
        self.distances.get(idx).copied().flatten()
    }

    /// The bias-weight multiplier for syscall `idx`: `1 + 8·0.5^d`, or
    /// exactly `1.0` when the target is unreachable from `idx` (directed
    /// mode never *suppresses* a syscall, it only amplifies the on-path
    /// ones — coverage feedback still works).
    pub fn multiplier(&self, idx: usize) -> f64 {
        match self.distance(idx) {
            Some(d) => 1.0 + Self::BOOST * 0.5f64.powi(d.min(64) as i32),
            None => 1.0,
        }
    }

    /// The smallest recorded distance (0 whenever the target set is
    /// non-empty) — telemetry uses this to report reachability.
    pub fn min_distance(&self) -> Option<u32> {
        self.distances.iter().flatten().copied().min()
    }

    /// How many syscalls have a finite distance.
    pub fn reachable(&self) -> usize {
        self.distances.iter().flatten().count()
    }
}

/// Graph adjacency: shared interface group, or a resource produced by one
/// side that a `Res` argument of the other side accepts.
fn adjacent(a: &SyscallDesc, b: &SyscallDesc) -> bool {
    if a.group == b.group {
        return true;
    }
    consumes_of(a, b) || consumes_of(b, a)
}

/// Whether `consumer` has a resource argument accepting what `producer`
/// produces.
fn consumes_of(consumer: &SyscallDesc, producer: &SyscallDesc) -> bool {
    let Some(produced) = producer.produces else {
        return false;
    };
    consumer
        .args
        .iter()
        .any(|spec| matches!(spec.ty, ArgType::Res(wanted) if wanted.accepts(produced)))
}

/// Convenience: whether any call in a group list belongs to `group` —
/// used by tests asserting graph shape.
pub fn group_of(table: &[SyscallDesc], idx: usize) -> InterfaceGroup {
    table[idx].group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_table, find};

    #[test]
    fn target_syscall_is_distance_zero() {
        let table = build_table();
        let map = DistanceMap::build(&table, &DirectedTarget::Syscall("socket".into()));
        let socket = find(&table, "socket").unwrap();
        assert_eq!(map.distance(socket), Some(0));
        assert!(map.multiplier(socket) > 8.9);
    }

    #[test]
    fn distance_decays_with_hops() {
        let table = build_table();
        let map = DistanceMap::build(&table, &DirectedTarget::Syscall("socket".into()));
        let sendto = find(&table, "sendto").unwrap();
        let getpid = find(&table, "getpid").unwrap();
        // sendto shares the Net group with socket: one hop.
        assert_eq!(map.distance(sendto), Some(1));
        assert!(map.multiplier(sendto) > map.multiplier(getpid));
        assert!(map.multiplier(getpid) >= 1.0);
    }

    #[test]
    fn channel_targets_seed_their_trigger_family() {
        let table = build_table();
        let map = DistanceMap::build(&table, &DirectedTarget::Channel("writeback".into()));
        assert_eq!(map.distance(find(&table, "mmap").unwrap()), Some(0));
        assert_eq!(map.distance(find(&table, "mlock").unwrap()), Some(0));
        // munmap shares the Memory group: one hop.
        assert_eq!(map.distance(find(&table, "munmap").unwrap()), Some(1));

        let net = DistanceMap::build(&table, &DirectedTarget::Channel("net-softirq".into()));
        assert_eq!(net.distance(find(&table, "sendto").unwrap()), Some(0));
        assert_eq!(net.distance(find(&table, "socket").unwrap()), Some(1));
    }

    #[test]
    fn unknown_targets_degrade_to_undirected() {
        let table = build_table();
        for target in [
            DirectedTarget::Syscall("no_such_call".into()),
            DirectedTarget::Channel("no-such-channel".into()),
            DirectedTarget::Channel("tty-flush".into()),
        ] {
            let map = DistanceMap::build(&table, &target);
            assert_eq!(map.reachable(), 0);
            for i in 0..table.len() {
                assert_eq!(map.multiplier(i), 1.0);
            }
        }
    }

    #[test]
    fn render_parse_round_trips() {
        for text in ["syscall:mmap", "channel:net-softirq", "channel:writeback"] {
            let target = DirectedTarget::parse(text).unwrap();
            assert_eq!(target.render(), text);
        }
        assert_eq!(DirectedTarget::parse("nonsense"), None);
        assert_eq!(DirectedTarget::parse("syscall:"), None);
        assert_eq!(DirectedTarget::parse("oracle:io"), None);
    }

    #[test]
    fn every_kernel_channel_has_a_trigger_entry() {
        // The trigger table mirrors the kernel's channel set; keep the
        // names in sync with `torpedo_kernel::DeferralChannel`.
        let names: Vec<&str> = CHANNEL_TRIGGERS.iter().map(|(n, _)| *n).collect();
        for expected in [
            "io-flush",
            "coredump",
            "modprobe",
            "audit",
            "softirq",
            "net-softirq",
            "writeback",
            "tty-flush",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
        // Every trigger name resolves in the table.
        let table = build_table();
        for (channel, triggers) in CHANNEL_TRIGGERS {
            for name in *triggers {
                assert!(
                    find(&table, name).is_some(),
                    "{channel} trigger {name} not in the table"
                );
            }
        }
    }
}
