//! Program generation: producing new candidate programs from scratch.
//!
//! Mirrors SYZKALLER's generation path: syscalls are chosen with the bias
//! of [`crate::bias`], arguments are drawn from their typed descriptions
//! with a preference for "interesting" values, and resource arguments are
//! wired to earlier producing calls when possible (§2.6.1).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::bias::pick_biased_directed;
use crate::desc::{ArgType, ResKind, SyscallDesc, INTERESTING};
use crate::distance::DistanceMap;
use crate::program::{ArgValue, Call, Program};
use crate::table::XATTR_NAMES;

/// Indexes of calls before `position` that produce a resource `wanted`
/// accepts.
pub fn producers_before(
    program: &Program,
    table: &[SyscallDesc],
    position: usize,
    wanted: ResKind,
) -> Vec<usize> {
    program.calls[..position.min(program.calls.len())]
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            table[c.desc]
                .produces
                .is_some_and(|produced| wanted.accepts(produced))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Generate one argument value for `ty`, wiring resources to earlier calls
/// in `program` (which has `position` calls so far).
pub fn gen_arg(
    ty: &ArgType,
    table: &[SyscallDesc],
    program: &Program,
    position: usize,
    rng: &mut StdRng,
) -> ArgValue {
    match ty {
        ArgType::Const(v) => ArgValue::Int(*v),
        ArgType::IntRange { min, max } => {
            if rng.gen_bool(0.3) {
                let interesting: Vec<u64> = INTERESTING
                    .iter()
                    .copied()
                    .filter(|v| v >= min && v <= max)
                    .collect();
                if let Some(v) = interesting.choose(rng) {
                    return ArgValue::Int(*v);
                }
            }
            ArgValue::Int(rng.gen_range(*min..=*max))
        }
        ArgType::Flags(bits) => {
            let mut value = 0u64;
            for bit in bits.iter() {
                if rng.gen_bool(0.3) {
                    value |= bit;
                }
            }
            ArgValue::Int(value)
        }
        ArgType::OneOf(values) => ArgValue::Int(*values.choose(rng).unwrap_or(&0)),
        ArgType::Res(wanted) => {
            let producers = producers_before(program, table, position, *wanted);
            if let Some(target) = producers.choose(rng) {
                ArgValue::Ref(*target)
            } else if rng.gen_bool(0.5) {
                // A plausible raw fd.
                ArgValue::Int(rng.gen_range(0..8))
            } else {
                ArgValue::Int(u64::MAX)
            }
        }
        ArgType::Len => {
            let lens = [0u64, 1, 7, 0x20, 0x100, 0x1000, 0x10000, 1 << 20];
            ArgValue::Int(*lens.choose(rng).unwrap())
        }
        ArgType::Ptr => {
            // SYZKALLER allocates pointer targets in a fixed arena window.
            let offsets = [0u64, 0x40, 0x100, 0x1000, 0x4000];
            ArgValue::Int(0x7f00_0000_0000 + offsets.choose(rng).unwrap())
        }
        ArgType::Path(options) => {
            ArgValue::Path((*options.choose(rng).unwrap_or(&"/dev/null")).to_string())
        }
        ArgType::XattrName => ArgValue::Name((*XATTR_NAMES.choose(rng).unwrap()).to_string()),
        ArgType::SignalNum => {
            let sigs = [0u64, 1, 2, 9, 10, 11, 14, 15, 17, 25, 31, 64];
            ArgValue::Int(*sigs.choose(rng).unwrap())
        }
    }
}

/// Generate a complete call of `desc_idx`, appended logically at `position`.
pub fn gen_call(
    table: &[SyscallDesc],
    desc_idx: usize,
    program: &Program,
    position: usize,
    rng: &mut StdRng,
) -> Call {
    let desc = &table[desc_idx];
    let args = desc
        .args
        .iter()
        .map(|spec| gen_arg(&spec.ty, table, program, position, rng))
        .collect();
    Call {
        desc: desc_idx,
        args,
    }
}

/// Generate a fresh program of up to `max_len` calls, avoiding syscalls in
/// `denylist` (the §4.1.2 blocking-call filter).
pub fn gen_program(
    table: &[SyscallDesc],
    max_len: usize,
    denylist: &HashSet<String>,
    rng: &mut StdRng,
) -> Program {
    gen_program_directed(table, max_len, denylist, None, rng)
}

/// [`gen_program`] with an optional directed-fuzzing distance map: call
/// selection amplifies syscalls near the target. With `distance = None`
/// this consumes the exact same RNG draws as the undirected generator.
pub fn gen_program_directed(
    table: &[SyscallDesc],
    max_len: usize,
    denylist: &HashSet<String>,
    distance: Option<&DistanceMap>,
    rng: &mut StdRng,
) -> Program {
    let len = rng.gen_range(1..=max_len.max(1));
    let mut program = Program::new();
    for i in 0..len {
        let Some(desc_idx) = pick_biased_directed(table, &program, denylist, distance, rng) else {
            break;
        };
        let call = gen_call(table, desc_idx, &program, i, rng);
        program.calls.push(call);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::build_table;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generated_programs_validate() {
        let table = build_table();
        let deny = HashSet::new();
        let mut r = rng();
        for _ in 0..200 {
            let prog = gen_program(&table, 8, &deny, &mut r);
            assert!(!prog.is_empty());
            prog.validate(&table).unwrap();
        }
    }

    #[test]
    fn denylist_is_respected() {
        let table = build_table();
        let deny: HashSet<String> = ["pause", "nanosleep", "poll", "recvfrom", "accept"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut r = rng();
        for _ in 0..100 {
            let prog = gen_program(&table, 10, &deny, &mut r);
            for name in prog.call_names(&table) {
                assert!(!deny.contains(name), "{name} should be denied");
            }
        }
    }

    #[test]
    fn resource_args_wire_to_producers() {
        let table = build_table();
        let deny = HashSet::new();
        let mut r = rng();
        let mut wired = 0;
        for _ in 0..300 {
            let prog = gen_program(&table, 10, &deny, &mut r);
            for call in &prog.calls {
                for arg in &call.args {
                    if matches!(arg, ArgValue::Ref(_)) {
                        wired += 1;
                    }
                }
            }
        }
        assert!(wired > 50, "only {wired} wired references in 300 programs");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let table = build_table();
        let deny = HashSet::new();
        let a = gen_program(&table, 6, &deny, &mut StdRng::seed_from_u64(7));
        let b = gen_program(&table, 6, &deny, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn gen_arg_respects_ranges() {
        let table = build_table();
        let prog = Program::new();
        let mut r = rng();
        for _ in 0..100 {
            let v = gen_arg(
                &ArgType::IntRange { min: 5, max: 10 },
                &table,
                &prog,
                0,
                &mut r,
            );
            let v = v.as_int().unwrap();
            assert!((5..=10).contains(&v));
        }
    }
}
