//! Cheap 64-bit content identity for programs.
//!
//! The campaign driver needs program identity in three hot paths —
//! quarantine checks, corpus/finding dedup, and crash accounting — and used
//! to re-render the full text serialization as the key each time. A
//! [`ProgramId`] is an FNV-1a hash over the IR itself: no allocation, no
//! formatting, and it agrees with text equality because the text rendering
//! is injective on the IR (every call index, argument kind, and payload byte
//! feeds the hash).

use crate::program::{ArgValue, Program};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit content hash of a program's IR.
///
/// Two structurally equal programs always share an id; distinct programs
/// collide only with ~2⁻⁶⁴ probability. Recompute it whenever the program
/// changes (one cheap IR walk per mutation) and reuse the cached value for
/// every identity check in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u64);

impl ProgramId {
    /// Hash `program`'s IR.
    pub fn of(program: &Program) -> ProgramId {
        let mut h = FNV_OFFSET;
        fold(&mut h, &(program.calls.len() as u64).to_le_bytes());
        for call in &program.calls {
            fold(&mut h, &(call.desc as u64).to_le_bytes());
            fold(&mut h, &(call.args.len() as u64).to_le_bytes());
            for arg in &call.args {
                match arg {
                    ArgValue::Int(v) => {
                        fold(&mut h, &[0]);
                        fold(&mut h, &v.to_le_bytes());
                    }
                    ArgValue::Ref(target) => {
                        fold(&mut h, &[1]);
                        fold(&mut h, &(*target as u64).to_le_bytes());
                    }
                    ArgValue::Path(p) => {
                        fold(&mut h, &[2]);
                        fold(&mut h, &(p.len() as u64).to_le_bytes());
                        fold(&mut h, p.as_bytes());
                    }
                    ArgValue::Name(n) => {
                        fold(&mut h, &[3]);
                        fold(&mut h, &(n.len() as u64).to_le_bytes());
                        fold(&mut h, n.as_bytes());
                    }
                }
            }
        }
        ProgramId(h)
    }

    /// Parse the `0x`-prefixed hex rendering produced by `Display` — the
    /// wire form used in forensics bundles and quarantine lists.
    pub fn parse_hex(text: &str) -> Option<ProgramId> {
        let digits = text.strip_prefix("0x")?;
        u64::from_str_radix(digits, 16).ok().map(ProgramId)
    }
}

impl std::fmt::Display for ProgramId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

fn fold(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= *b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;
    use crate::mutate::Mutator;
    use crate::program::Call;
    use crate::serialize::serialize;
    use crate::table::{build_table, find};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn equal_programs_share_an_id() {
        let table = build_table();
        let mut rng = StdRng::seed_from_u64(11);
        let prog = gen_program(&table, 8, &HashSet::new(), &mut rng);
        assert_eq!(ProgramId::of(&prog), ProgramId::of(&prog.clone()));
    }

    #[test]
    fn payload_kind_is_distinguished() {
        let table = build_table();
        let creat = find(&table, "creat").unwrap();
        let a = Program {
            calls: vec![Call {
                desc: creat,
                args: vec![ArgValue::Path("x".into()), ArgValue::Int(0)],
            }],
        };
        let mut b = a.clone();
        b.calls[0].args[0] = ArgValue::Name("x".into());
        assert_ne!(ProgramId::of(&a), ProgramId::of(&b));
    }

    #[test]
    fn argument_change_changes_the_id() {
        let table = build_table();
        let alarm = find(&table, "alarm").unwrap();
        let a = Program {
            calls: vec![Call {
                desc: alarm,
                args: vec![ArgValue::Int(1)],
            }],
        };
        let mut b = a.clone();
        b.calls[0].args[0] = ArgValue::Int(2);
        assert_ne!(ProgramId::of(&a), ProgramId::of(&b));
    }

    proptest! {
        /// The satellite guarantee: id equality agrees with serialize-text
        /// equality on generated (and mutated) programs.
        #[test]
        fn id_agrees_with_serialize_text_equality(
            seed_a in 0u64..1 << 48,
            seed_b in 0u64..1 << 48,
            len_a in 1usize..10,
            len_b in 1usize..10,
            mutate in any::<bool>(),
        ) {
            let table = build_table();
            let mut rng = StdRng::seed_from_u64(seed_a);
            let a = gen_program(&table, len_a, &HashSet::new(), &mut rng);
            let mut rng = StdRng::seed_from_u64(seed_b);
            let mut b = gen_program(&table, len_b, &HashSet::new(), &mut rng);
            if mutate {
                Mutator::default().mutate(&mut b, &table, None, &mut rng);
            }
            let text_eq = serialize(&a, &table) == serialize(&b, &table);
            let id_eq = ProgramId::of(&a) == ProgramId::of(&b);
            prop_assert_eq!(text_eq, id_eq);
        }
    }
}
