//! The prioritized work queue shared by executors (§2.6.3): "the queue
//! itself prioritizes among the different type of work items; for example,
//! a 'triage' item is more likely to be selected than a 'candidate' item."

use std::collections::VecDeque;

use crate::program::Program;

/// The lifecycle stage a work item is in (Figure 3.2's program states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkKind {
    /// Run once to see whether it produces new coverage.
    Candidate,
    /// Re-run to verify the new coverage is stable.
    Triage,
    /// Shrink while preserving the new coverage.
    Minimize,
    /// Repeatedly mutate / inject faults for variants.
    Smash,
}

impl WorkKind {
    /// Selection priority: higher drains first.
    pub fn priority(self) -> u8 {
        match self {
            WorkKind::Triage => 3,
            WorkKind::Minimize => 2,
            WorkKind::Smash => 1,
            WorkKind::Candidate => 0,
        }
    }
}

/// One queued unit of work.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Stage.
    pub kind: WorkKind,
    /// The program to operate on.
    pub program: Program,
    /// For triage/minimize: the call index whose coverage is of interest.
    pub call_of_interest: Option<usize>,
}

/// A priority work queue.
#[derive(Debug, Clone, Default)]
pub struct WorkQueue {
    triage: VecDeque<WorkItem>,
    minimize: VecDeque<WorkItem>,
    smash: VecDeque<WorkItem>,
    candidate: VecDeque<WorkItem>,
}

impl WorkQueue {
    /// An empty queue.
    pub fn new() -> WorkQueue {
        WorkQueue::default()
    }

    /// Enqueue an item into its stage's lane.
    pub fn push(&mut self, item: WorkItem) {
        match item.kind {
            WorkKind::Triage => self.triage.push_back(item),
            WorkKind::Minimize => self.minimize.push_back(item),
            WorkKind::Smash => self.smash.push_back(item),
            WorkKind::Candidate => self.candidate.push_back(item),
        }
    }

    /// Dequeue the highest-priority available item.
    pub fn pop(&mut self) -> Option<WorkItem> {
        self.triage
            .pop_front()
            .or_else(|| self.minimize.pop_front())
            .or_else(|| self.smash.pop_front())
            .or_else(|| self.candidate.pop_front())
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.triage.len() + self.minimize.len() + self.smash.len() + self.candidate.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items queued for `kind`.
    pub fn len_of(&self, kind: WorkKind) -> usize {
        match kind {
            WorkKind::Triage => self.triage.len(),
            WorkKind::Minimize => self.minimize.len(),
            WorkKind::Smash => self.smash.len(),
            WorkKind::Candidate => self.candidate.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(kind: WorkKind) -> WorkItem {
        WorkItem {
            kind,
            program: Program::new(),
            call_of_interest: None,
        }
    }

    #[test]
    fn priority_order_is_triage_minimize_smash_candidate() {
        let mut q = WorkQueue::new();
        q.push(item(WorkKind::Candidate));
        q.push(item(WorkKind::Smash));
        q.push(item(WorkKind::Minimize));
        q.push(item(WorkKind::Triage));
        let order: Vec<WorkKind> = std::iter::from_fn(|| q.pop()).map(|i| i.kind).collect();
        assert_eq!(
            order,
            vec![
                WorkKind::Triage,
                WorkKind::Minimize,
                WorkKind::Smash,
                WorkKind::Candidate
            ]
        );
    }

    #[test]
    fn fifo_within_a_lane() {
        let mut q = WorkQueue::new();
        let mut a = item(WorkKind::Triage);
        a.call_of_interest = Some(1);
        let mut b = item(WorkKind::Triage);
        b.call_of_interest = Some(2);
        q.push(a);
        q.push(b);
        assert_eq!(q.pop().unwrap().call_of_interest, Some(1));
        assert_eq!(q.pop().unwrap().call_of_interest, Some(2));
    }

    #[test]
    fn len_accounting() {
        let mut q = WorkQueue::new();
        assert!(q.is_empty());
        q.push(item(WorkKind::Candidate));
        q.push(item(WorkKind::Candidate));
        q.push(item(WorkKind::Smash));
        assert_eq!(q.len(), 3);
        assert_eq!(q.len_of(WorkKind::Candidate), 2);
        assert_eq!(q.len_of(WorkKind::Triage), 0);
        q.pop();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn priorities_are_distinct() {
        let kinds = [
            WorkKind::Candidate,
            WorkKind::Triage,
            WorkKind::Minimize,
            WorkKind::Smash,
        ];
        let mut ps: Vec<u8> = kinds.iter().map(|k| k.priority()).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), 4);
    }
}
