//! The program intermediate representation: a sequence of typed calls with
//! resource flow between them (`r0 = socket(…); sendto(r0, …)`).

use crate::desc::{ArgType, ResKind, SyscallDesc};

/// One argument value in a concrete call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// A literal integer.
    Int(u64),
    /// The result of an earlier call in the same program (by call index).
    Ref(usize),
    /// A path string payload.
    Path(String),
    /// An xattr-name string payload.
    Name(String),
}

impl ArgValue {
    /// The literal value, if this is an `Int`.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Path(s) | ArgValue::Name(s) => Some(s),
            _ => None,
        }
    }
}

/// One concrete call: a description index plus argument values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Index into the description table.
    pub desc: usize,
    /// Argument values, one per [`SyscallDesc::args`] entry.
    pub args: Vec<ArgValue>,
}

/// A program: an ordered sequence of calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The calls, executed in order.
    pub calls: Vec<Call>,
}

/// A structural validity problem found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A call references a description index outside the table.
    BadDescIndex {
        /// Offending call position.
        call: usize,
    },
    /// A call has the wrong number of arguments.
    Arity {
        /// Offending call position.
        call: usize,
        /// Expected count.
        expected: usize,
        /// Actual count.
        actual: usize,
    },
    /// A resource reference points forward or at itself.
    ForwardRef {
        /// Offending call position.
        call: usize,
        /// The referenced call.
        target: usize,
    },
    /// A resource reference points at a call that produces nothing or an
    /// incompatible resource kind.
    KindMismatch {
        /// Offending call position.
        call: usize,
        /// The referenced call.
        target: usize,
        /// What the argument wanted.
        wanted: ResKind,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadDescIndex { call } => {
                write!(f, "call {call}: description index out of range")
            }
            ValidationError::Arity {
                call,
                expected,
                actual,
            } => write!(f, "call {call}: expected {expected} args, got {actual}"),
            ValidationError::ForwardRef { call, target } => {
                write!(f, "call {call}: forward reference to call {target}")
            }
            ValidationError::KindMismatch {
                call,
                target,
                wanted,
            } => write!(
                f,
                "call {call}: reference to call {target} does not produce {wanted:?}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program { calls: Vec::new() }
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Structural validation against `table`.
    ///
    /// # Errors
    /// The first problem found, if any.
    pub fn validate(&self, table: &[SyscallDesc]) -> Result<(), ValidationError> {
        for (i, call) in self.calls.iter().enumerate() {
            let desc = table
                .get(call.desc)
                .ok_or(ValidationError::BadDescIndex { call: i })?;
            if call.args.len() != desc.args.len() {
                return Err(ValidationError::Arity {
                    call: i,
                    expected: desc.args.len(),
                    actual: call.args.len(),
                });
            }
            for (arg_idx, value) in call.args.iter().enumerate() {
                if let ArgValue::Ref(target) = value {
                    if *target >= i {
                        return Err(ValidationError::ForwardRef {
                            call: i,
                            target: *target,
                        });
                    }
                    if let ArgType::Res(wanted) = desc.args[arg_idx].ty {
                        let produced = table[self.calls[*target].desc].produces;
                        let ok = produced.is_some_and(|p| wanted.accepts(p));
                        if !ok {
                            return Err(ValidationError::KindMismatch {
                                call: i,
                                target: *target,
                                wanted,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rewrite all `Ref` arguments after removing the call at `removed`,
    /// dropping the removed call and re-pointing or degrading references.
    ///
    /// References to the removed call become `Int(u64::MAX)` (an invalid
    /// fd), matching SYZKALLER's minimizer behaviour; references to later
    /// calls shift down by one.
    pub fn remove_call(&mut self, removed: usize) -> Call {
        let call = self.calls.remove(removed);
        for c in &mut self.calls {
            for arg in &mut c.args {
                if let ArgValue::Ref(target) = arg {
                    if *target == removed {
                        *arg = ArgValue::Int(u64::MAX);
                    } else if *target > removed {
                        *target -= 1;
                    }
                }
            }
        }
        call
    }

    /// Insert `call` at `index`, shifting later references up by one.
    ///
    /// # Panics
    /// Panics if `index > len()`.
    pub fn insert_call(&mut self, index: usize, call: Call) {
        let start = index.min(self.calls.len());
        for c in &mut self.calls[start..] {
            for arg in &mut c.args {
                if let ArgValue::Ref(target) = arg {
                    if *target >= index {
                        *target += 1;
                    }
                }
            }
        }
        self.calls.insert(index, call);
    }

    /// The set of call indexes whose results are referenced later.
    pub fn referenced_calls(&self) -> Vec<usize> {
        let mut refs: Vec<usize> = self
            .calls
            .iter()
            .flat_map(|c| c.args.iter())
            .filter_map(|a| match a {
                ArgValue::Ref(t) => Some(*t),
                _ => None,
            })
            .collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }

    /// Names of the calls, resolved through `table` (diagnostics).
    pub fn call_names<'t>(&self, table: &'t [SyscallDesc]) -> Vec<&'t str> {
        self.calls
            .iter()
            .map(|c| table.get(c.desc).map_or("?", |d| d.name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{build_table, find};

    fn socket_sendto() -> (Vec<SyscallDesc>, Program) {
        let table = build_table();
        let socket = find(&table, "socket").unwrap();
        let sendto = find(&table, "sendto").unwrap();
        let prog = Program {
            calls: vec![
                Call {
                    desc: socket,
                    args: vec![ArgValue::Int(16), ArgValue::Int(3), ArgValue::Int(9)],
                },
                Call {
                    desc: sendto,
                    args: vec![
                        ArgValue::Ref(0),
                        ArgValue::Int(0x7f00_0000),
                        ArgValue::Int(0x24),
                        ArgValue::Int(0),
                        ArgValue::Int(0),
                        ArgValue::Int(0xc),
                    ],
                },
            ],
        };
        (table, prog)
    }

    #[test]
    fn valid_program_validates() {
        let (table, prog) = socket_sendto();
        prog.validate(&table).unwrap();
    }

    #[test]
    fn forward_ref_is_rejected() {
        let (table, mut prog) = socket_sendto();
        prog.calls[1].args[0] = ArgValue::Ref(1);
        assert!(matches!(
            prog.validate(&table),
            Err(ValidationError::ForwardRef { call: 1, target: 1 })
        ));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let table = build_table();
        let getpid = find(&table, "getpid").unwrap();
        let sendto = find(&table, "sendto").unwrap();
        let prog = Program {
            calls: vec![
                Call {
                    desc: getpid,
                    args: vec![],
                },
                Call {
                    desc: sendto,
                    args: vec![
                        ArgValue::Ref(0), // a Pid where a SockFd is wanted
                        ArgValue::Int(0),
                        ArgValue::Int(0),
                        ArgValue::Int(0),
                        ArgValue::Int(0),
                        ArgValue::Int(0),
                    ],
                },
            ],
        };
        assert!(matches!(
            prog.validate(&table),
            Err(ValidationError::KindMismatch {
                wanted: ResKind::SockFd,
                ..
            })
        ));
    }

    #[test]
    fn arity_is_checked() {
        let (table, mut prog) = socket_sendto();
        prog.calls[0].args.pop();
        assert!(matches!(
            prog.validate(&table),
            Err(ValidationError::Arity {
                call: 0,
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn remove_call_degrades_refs() {
        let (table, mut prog) = socket_sendto();
        prog.remove_call(0);
        assert_eq!(prog.len(), 1);
        assert_eq!(prog.calls[0].args[0], ArgValue::Int(u64::MAX));
        prog.validate(&table).unwrap();
    }

    #[test]
    fn remove_call_shifts_later_refs() {
        let (table, mut prog) = socket_sendto();
        let getpid = find(&table, "getpid").unwrap();
        prog.insert_call(
            0,
            Call {
                desc: getpid,
                args: vec![],
            },
        );
        // Now: [getpid, socket, sendto(Ref(1))]
        assert_eq!(prog.calls[2].args[0], ArgValue::Ref(1));
        prog.remove_call(0);
        assert_eq!(prog.calls[1].args[0], ArgValue::Ref(0));
        prog.validate(&table).unwrap();
    }

    #[test]
    fn insert_shifts_refs_up() {
        let (table, mut prog) = socket_sendto();
        let getpid = find(&table, "getpid").unwrap();
        prog.insert_call(
            1,
            Call {
                desc: getpid,
                args: vec![],
            },
        );
        assert_eq!(prog.calls[2].args[0], ArgValue::Ref(0));
        prog.validate(&table).unwrap();
        prog.insert_call(
            0,
            Call {
                desc: getpid,
                args: vec![],
            },
        );
        assert_eq!(prog.calls[3].args[0], ArgValue::Ref(1));
        prog.validate(&table).unwrap();
    }

    #[test]
    fn referenced_calls_lists_targets() {
        let (_, prog) = socket_sendto();
        assert_eq!(prog.referenced_calls(), vec![0]);
    }
}
