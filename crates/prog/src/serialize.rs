//! Text (de)serialization of programs, in a simplified SYZKALLER syntax.
//!
//! The seed-ingestion workflow of §3 ("Adding Seed Ingestion and
//! Minimization") needs programs on disk. The format is line-oriented:
//!
//! ```text
//! r0 = socket(0x10, 0x3, 0x9)
//! sendto(r0, 0x7f0000000000, 0x24, 0x0, 0x0, 0xc)
//! creat(&'mntpoint/tmp', 0x124)
//! setxattr(&'f', @'system.posix_acl_access', 0x0, 0x15, 0x1)
//! ```
//!
//! `rN` names the result of the N-th call; `&'…'` is a path payload; `@'…'`
//! an xattr-name payload. Lines starting with `#` are comments.

use crate::desc::SyscallDesc;
use crate::program::{ArgValue, Call, Program};
use crate::table::NameIndex;

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line does not look like `name(args)`.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown syscall name.
    UnknownSyscall {
        /// 1-based line number.
        line: usize,
        /// The name that failed to resolve.
        name: String,
    },
    /// Wrong number of arguments for the named syscall.
    Arity {
        /// 1-based line number.
        line: usize,
        /// Expected count.
        expected: usize,
        /// Actual count.
        actual: usize,
    },
    /// An argument token could not be parsed.
    BadArg {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// An `rN` reference points at a call that does not exist (yet).
    BadRef {
        /// 1-based line number.
        line: usize,
        /// The reference index.
        target: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line } => write!(f, "line {line}: malformed call"),
            ParseError::UnknownSyscall { line, name } => {
                write!(f, "line {line}: unknown syscall '{name}'")
            }
            ParseError::Arity {
                line,
                expected,
                actual,
            } => write!(f, "line {line}: expected {expected} args, got {actual}"),
            ParseError::BadArg { line, token } => {
                write!(f, "line {line}: unparseable argument '{token}'")
            }
            ParseError::BadRef { line, target } => {
                write!(f, "line {line}: reference r{target} out of range")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize `program` to the text format.
pub fn serialize(program: &Program, table: &[SyscallDesc]) -> String {
    let referenced = program.referenced_calls();
    let mut out = String::new();
    for (i, call) in program.calls.iter().enumerate() {
        let desc = &table[call.desc];
        if referenced.contains(&i) {
            out.push_str(&format!("r{i} = "));
        }
        out.push_str(desc.name);
        out.push('(');
        let rendered: Vec<String> = call.args.iter().map(render_arg).collect();
        out.push_str(&rendered.join(", "));
        out.push_str(")\n");
    }
    out
}

fn render_arg(arg: &ArgValue) -> String {
    match arg {
        ArgValue::Int(v) => format!("{v:#x}"),
        ArgValue::Ref(i) => format!("r{i}"),
        ArgValue::Path(p) => format!("&'{p}'"),
        ArgValue::Name(n) => format!("@'{n}'"),
    }
}

/// Parse the text format back into a [`Program`].
///
/// Builds a [`NameIndex`] for the single call; batch parsers (seed loading)
/// should build the index once and use [`deserialize_with`].
///
/// # Errors
/// Any [`ParseError`]; the first problem encountered is reported.
pub fn deserialize(text: &str, table: &[SyscallDesc]) -> Result<Program, ParseError> {
    deserialize_with(text, table, &NameIndex::new(table))
}

/// Parse the text format back into a [`Program`], resolving names through a
/// pre-built [`NameIndex`].
///
/// # Errors
/// Any [`ParseError`]; the first problem encountered is reported.
pub fn deserialize_with(
    text: &str,
    table: &[SyscallDesc],
    index: &NameIndex,
) -> Result<Program, ParseError> {
    let mut program = Program::new();
    let mut lineno = 0usize;
    for raw in text.lines() {
        lineno += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip an optional "rN = " prefix.
        let body = match line.split_once('=') {
            Some((lhs, rhs)) if lhs.trim().starts_with('r') && !lhs.contains('(') => rhs.trim(),
            _ => line,
        };
        let open = body
            .find('(')
            .ok_or(ParseError::Malformed { line: lineno })?;
        let close = body
            .rfind(')')
            .ok_or(ParseError::Malformed { line: lineno })?;
        if close < open {
            return Err(ParseError::Malformed { line: lineno });
        }
        let name = body[..open].trim();
        let desc_idx = index.get(name).ok_or_else(|| ParseError::UnknownSyscall {
            line: lineno,
            name: name.to_string(),
        })?;
        let args_str = &body[open + 1..close];
        let tokens = split_args(args_str);
        let expected = table[desc_idx].args.len();
        if tokens.len() != expected {
            return Err(ParseError::Arity {
                line: lineno,
                expected,
                actual: tokens.len(),
            });
        }
        let mut args = Vec::with_capacity(tokens.len());
        for token in tokens {
            args.push(parse_arg(&token, lineno, program.len())?);
        }
        program.calls.push(Call {
            desc: desc_idx,
            args,
        });
    }
    Ok(program)
}

/// Split a comma-separated argument list, respecting quoted strings.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for ch in s.chars() {
        match ch {
            '\'' => {
                in_quote = !in_quote;
                cur.push(ch);
            }
            ',' if !in_quote => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_arg(token: &str, line: usize, current_call: usize) -> Result<ArgValue, ParseError> {
    if let Some(rest) = token.strip_prefix("&'") {
        let path = rest.strip_suffix('\'').ok_or_else(|| ParseError::BadArg {
            line,
            token: token.to_string(),
        })?;
        return Ok(ArgValue::Path(path.to_string()));
    }
    if let Some(rest) = token.strip_prefix("@'") {
        let name = rest.strip_suffix('\'').ok_or_else(|| ParseError::BadArg {
            line,
            token: token.to_string(),
        })?;
        return Ok(ArgValue::Name(name.to_string()));
    }
    if let Some(rest) = token.strip_prefix('r') {
        if let Ok(target) = rest.parse::<usize>() {
            if target >= current_call {
                return Err(ParseError::BadRef { line, target });
            }
            return Ok(ArgValue::Ref(target));
        }
    }
    let value = if let Some(hex) = token.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        token.parse::<u64>().ok()
    };
    value.map(ArgValue::Int).ok_or_else(|| ParseError::BadArg {
        line,
        token: token.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::build_table;

    #[test]
    fn round_trip_socket_sendto() {
        let table = build_table();
        let text = "\
r0 = socket(0x10, 0x3, 0x9)
sendto(r0, 0x7f0000000000, 0x24, 0x0, 0x0, 0xc)
";
        let prog = deserialize(text, &table).unwrap();
        prog.validate(&table).unwrap();
        let rendered = serialize(&prog, &table);
        let reparsed = deserialize(&rendered, &table).unwrap();
        assert_eq!(prog, reparsed);
        assert!(rendered.contains("r0 = socket"));
    }

    #[test]
    fn paths_and_names_round_trip() {
        let table = build_table();
        let text = "\
creat(&'mntpoint/tmp', 0x124)
setxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x0, 0x15, 0x1)
";
        let prog = deserialize(text, &table).unwrap();
        assert_eq!(prog.calls[0].args[0], ArgValue::Path("mntpoint/tmp".into()));
        assert_eq!(
            prog.calls[1].args[1],
            ArgValue::Name("system.posix_acl_access".into())
        );
        let rendered = serialize(&prog, &table);
        assert_eq!(deserialize(&rendered, &table).unwrap(), prog);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let table = build_table();
        let text = "# a seed\n\nsync()\n";
        let prog = deserialize(text, &table).unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn unknown_syscall_reports_line() {
        let table = build_table();
        let err = deserialize("sync()\nfrobnicate(0x1)\n", &table).unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownSyscall {
                line: 2,
                name: "frobnicate".into()
            }
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let table = build_table();
        let err = deserialize("socket(0x1)\n", &table).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Arity {
                expected: 3,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn forward_ref_rejected_at_parse() {
        let table = build_table();
        let err = deserialize("close(r5)\n", &table).unwrap_err();
        assert!(matches!(err, ParseError::BadRef { target: 5, .. }));
    }

    #[test]
    fn bad_tokens_rejected() {
        let table = build_table();
        let err = deserialize("alarm(xyz)\n", &table).unwrap_err();
        assert!(matches!(err, ParseError::BadArg { .. }));
        let err = deserialize("creat(&'unterminated, 0x0)\n", &table).unwrap_err();
        assert!(matches!(
            err,
            ParseError::Malformed { .. } | ParseError::Arity { .. } | ParseError::BadArg { .. }
        ));
    }

    #[test]
    fn decimal_ints_accepted() {
        let table = build_table();
        let prog = deserialize("alarm(4)\n", &table).unwrap();
        assert_eq!(prog.calls[0].args[0], ArgValue::Int(4));
    }
}
