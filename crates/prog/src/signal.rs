//! Coverage-signal bookkeeping.
//!
//! TORPEDO's evaluation runs with SYZKALLER's fallback signal (syscall
//! number XOR error code, §3.1.2); the tracker is agnostic to how signals
//! are produced and simply answers "did this execution contribute anything
//! new" — the binary half of the two-level feedback design (§3.5).

use std::collections::HashSet;

/// A cumulative set of observed coverage signals.
#[derive(Debug, Clone, Default)]
pub struct CoverageSet {
    seen: HashSet<u64>,
}

impl CoverageSet {
    /// An empty set.
    pub fn new() -> CoverageSet {
        CoverageSet {
            seen: HashSet::new(),
        }
    }

    /// Merge `signals`, returning how many were new.
    pub fn merge(&mut self, signals: &[u64]) -> usize {
        let mut new = 0;
        for &sig in signals {
            if self.seen.insert(sig) {
                new += 1;
            }
        }
        new
    }

    /// Whether `signals` would contribute anything new, without merging.
    pub fn has_new(&self, signals: &[u64]) -> bool {
        signals.iter().any(|sig| !self.seen.contains(sig))
    }

    /// Only the signals from `signals` that are new, without merging.
    pub fn new_signals(&self, signals: &[u64]) -> Vec<u64> {
        signals
            .iter()
            .copied()
            .filter(|sig| !self.seen.contains(sig))
            .collect()
    }

    /// Every distinct signal seen, sorted ascending — the deterministic
    /// ordering checkpoint bundles serialize.
    pub fn signals_sorted(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.seen.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct signals seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Whether `sig` has been seen.
    pub fn contains(&self, sig: u64) -> bool {
        self.seen.contains(&sig)
    }
}

/// Per-call coverage from executing one whole program: one signal vector
/// per call, in call order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramCoverage {
    /// Signals per call.
    pub per_call: Vec<Vec<u64>>,
}

impl ProgramCoverage {
    /// All signals flattened.
    pub fn flat(&self) -> Vec<u64> {
        self.per_call.iter().flatten().copied().collect()
    }

    /// Indexes of calls that produced at least one signal not in `seen` —
    /// these become triage items in the SYZKALLER state machine (§2.6.3).
    pub fn new_cover_calls(&self, seen: &CoverageSet) -> Vec<usize> {
        self.per_call
            .iter()
            .enumerate()
            .filter(|(_, sigs)| seen.has_new(sigs))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_new_only() {
        let mut set = CoverageSet::new();
        assert_eq!(set.merge(&[1, 2, 3]), 3);
        assert_eq!(set.merge(&[2, 3, 4]), 1);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn has_new_without_merging() {
        let mut set = CoverageSet::new();
        set.merge(&[10]);
        assert!(set.has_new(&[10, 11]));
        assert!(!set.has_new(&[10]));
        assert_eq!(set.len(), 1, "has_new must not merge");
    }

    #[test]
    fn new_signals_filters() {
        let mut set = CoverageSet::new();
        set.merge(&[1, 2]);
        assert_eq!(set.new_signals(&[1, 2, 3, 4]), vec![3, 4]);
    }

    #[test]
    fn new_cover_calls_finds_triage_candidates() {
        let mut seen = CoverageSet::new();
        seen.merge(&[100, 200]);
        let cov = ProgramCoverage {
            per_call: vec![vec![100], vec![200, 300], vec![400]],
        };
        assert_eq!(cov.new_cover_calls(&seen), vec![1, 2]);
        assert_eq!(cov.flat(), vec![100, 200, 300, 400]);
    }
}
