//! The genetic operators of §2.6.1: splice, add-call (biased), remove-call,
//! and mutate-argument — with the SYZKALLER weighting (argument mutation is
//! the most common operation; add is less likely near the length cap;
//! remove is less likely on tiny programs).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::bias::{pick_biased_directed, weighted_index};
use crate::desc::{ArgType, SyscallDesc, INTERESTING};
use crate::distance::DistanceMap;
use crate::gen::{gen_arg, gen_call, producers_before};
use crate::program::{ArgValue, Program};

/// Which operator a mutation applied (for logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Spliced a run of calls from another corpus program.
    Splice,
    /// Added a biased call.
    AddCall,
    /// Removed a call.
    RemoveCall,
    /// Randomized one argument of one call.
    MutateArg,
}

impl MutationOp {
    /// Stable wire name, used by the forensics bundle schema.
    pub fn as_str(self) -> &'static str {
        match self {
            MutationOp::Splice => "splice",
            MutationOp::AddCall => "add-call",
            MutationOp::RemoveCall => "remove-call",
            MutationOp::MutateArg => "mutate-arg",
        }
    }

    /// Parse a wire name produced by [`MutationOp::as_str`].
    pub fn parse(name: &str) -> Option<MutationOp> {
        match name {
            "splice" => Some(MutationOp::Splice),
            "add-call" => Some(MutationOp::AddCall),
            "remove-call" => Some(MutationOp::RemoveCall),
            "mutate-arg" => Some(MutationOp::MutateArg),
            _ => None,
        }
    }
}

/// Tunable mutation policy.
///
/// The paper (§5.3) notes SYZKALLER's operator constants "are not grounded
/// in any legitimate research"; they are exposed here so the ablation
/// benches can sweep them.
#[derive(Debug, Clone)]
pub struct MutatePolicy {
    /// Maximum program length.
    pub max_len: usize,
    /// Relative weight of splice (needs a corpus donor).
    pub w_splice: f64,
    /// Relative weight of add-call.
    pub w_add: f64,
    /// Relative weight of remove-call.
    pub w_remove: f64,
    /// Relative weight of argument mutation.
    pub w_mutate_arg: f64,
    /// Syscall names never generated (the blocking denylist, §4.1.2).
    pub denylist: HashSet<String>,
}

impl Default for MutatePolicy {
    fn default() -> Self {
        MutatePolicy {
            max_len: 12,
            w_splice: 0.12,
            w_add: 0.25,
            w_remove: 0.13,
            w_mutate_arg: 0.50,
            denylist: HashSet::new(),
        }
    }
}

/// The mutation engine.
#[derive(Debug, Clone)]
pub struct Mutator {
    policy: MutatePolicy,
    distance: Option<DistanceMap>,
}

impl Mutator {
    /// A mutator with the given policy (undirected).
    pub fn new(policy: MutatePolicy) -> Mutator {
        Mutator {
            policy,
            distance: None,
        }
    }

    /// A mutator steered by a directed-fuzzing distance map. With
    /// `distance = None` this is exactly [`Mutator::new`]: the undirected
    /// path consumes the same RNG draws as before, so existing campaigns
    /// replay byte-identically.
    pub fn directed(policy: MutatePolicy, distance: Option<DistanceMap>) -> Mutator {
        Mutator { policy, distance }
    }

    /// The active policy.
    pub fn policy(&self) -> &MutatePolicy {
        &self.policy
    }

    /// The distance map steering this mutator, when directed.
    pub fn distance(&self) -> Option<&DistanceMap> {
        self.distance.as_ref()
    }

    /// Mutate `program` in place; `donor` is a random corpus program used
    /// for splicing (splice is skipped when absent). Returns the operator
    /// applied.
    pub fn mutate(
        &self,
        program: &mut Program,
        table: &[SyscallDesc],
        donor: Option<&Program>,
        rng: &mut StdRng,
    ) -> MutationOp {
        let p = &self.policy;
        // Dynamic re-weighting per §2.6.1: add is less likely near max
        // length, remove less likely when the program is small.
        let len = program.len();
        // Directed campaigns explore harder until the program carries a
        // call *from the target set* (distance 0): triple the add-call
        // weight so the biased picker (which itself amplifies on-path
        // candidates) gets more chances to plant one. Merely-adjacent
        // calls don't end the boost — a program with `socket` but no
        // `sendto` still hasn't reached a net target.
        // Deterministic — no RNG consumed.
        let add_boost = match &self.distance {
            Some(map)
                if !program
                    .calls
                    .iter()
                    .any(|c| map.distance(c.desc) == Some(0)) =>
            {
                3.0
            }
            _ => 1.0,
        };
        let w_add = if len >= p.max_len {
            0.0
        } else {
            p.w_add * add_boost
        };
        let w_remove = if len <= 1 {
            0.0
        } else {
            p.w_remove * (len as f64 / p.max_len as f64 + 0.5)
        };
        let w_splice = if donor.is_some() { p.w_splice } else { 0.0 };
        let w_arg = if len == 0 { 0.0 } else { p.w_mutate_arg };
        let total = w_add + w_remove + w_splice + w_arg;
        if total <= 0.0 {
            // Degenerate: force an add.
            self.add_call(program, table, rng);
            return MutationOp::AddCall;
        }
        let mut pick = rng.gen_range(0.0..total);
        if pick < w_splice {
            self.splice(program, donor.expect("weight>0 implies donor"), table, rng);
            return MutationOp::Splice;
        }
        pick -= w_splice;
        if pick < w_add {
            self.add_call(program, table, rng);
            return MutationOp::AddCall;
        }
        pick -= w_add;
        if pick < w_remove {
            self.remove_call(program, rng);
            return MutationOp::RemoveCall;
        }
        self.mutate_arg(program, table, rng);
        MutationOp::MutateArg
    }

    /// Splice: replace a suffix of `program` with a random run of calls
    /// from `donor` (§2.6.1 item 1), degrading dangling or type-incompatible
    /// references.
    pub fn splice(
        &self,
        program: &mut Program,
        donor: &Program,
        table: &[SyscallDesc],
        rng: &mut StdRng,
    ) {
        if donor.is_empty() {
            return;
        }
        let keep = rng.gen_range(0..=program.len().min(self.policy.max_len - 1));
        program.calls.truncate(keep);
        let start = rng.gen_range(0..donor.len());
        let take = rng
            .gen_range(1..=donor.len() - start)
            .min(self.policy.max_len - keep);
        for call in &donor.calls[start..start + take] {
            let mut call = call.clone();
            let desc = &table[call.desc];
            // Donor references point into the donor program; remap anything
            // that now dangles or lands on an incompatible producer.
            for (arg_idx, arg) in call.args.iter_mut().enumerate() {
                if let ArgValue::Ref(target) = arg {
                    let remapped = *target as i64 - start as i64 + keep as i64;
                    let compatible = remapped >= 0
                        && (remapped as usize) < program.len()
                        && match desc.args.get(arg_idx).map(|a| &a.ty) {
                            Some(ArgType::Res(wanted)) => table
                                [program.calls[remapped as usize].desc]
                                .produces
                                .is_some_and(|p| wanted.accepts(p)),
                            _ => true,
                        };
                    if compatible {
                        *arg = ArgValue::Ref(remapped as usize);
                    } else {
                        *arg = ArgValue::Int(u64::MAX);
                    }
                }
            }
            program.calls.push(call);
        }
    }

    /// Add one biased call at a random position (§2.6.1 item 2); directed
    /// mutators amplify candidates near the target.
    ///
    /// Directed insertion is also *wire-aware*: a call that consumes a
    /// resource the program already produces is inserted after its last
    /// producer, so [`gen_call`] can reference it instead of falling back
    /// to a junk fd. (An unwired `sendto(-1, …)` is a dead mutation — it
    /// can never reach the net targets.) The undirected path keeps its
    /// original uniform position draw.
    pub fn add_call(&self, program: &mut Program, table: &[SyscallDesc], rng: &mut StdRng) {
        let Some(desc_idx) = pick_biased_directed(
            table,
            program,
            &self.policy.denylist,
            self.distance.as_ref(),
            rng,
        ) else {
            return;
        };
        let len = program.len();
        let floor = match &self.distance {
            None => 0,
            Some(_) => table[desc_idx]
                .args
                .iter()
                .find_map(|spec| match spec.ty {
                    ArgType::Res(wanted) => program
                        .calls
                        .iter()
                        .rposition(|c| table[c.desc].produces.is_some_and(|p| wanted.accepts(p)))
                        .map(|i| i + 1),
                    _ => None,
                })
                .unwrap_or(0),
        };
        let position = rng.gen_range(floor.min(len)..=len);
        let call = gen_call(table, desc_idx, program, position, rng);
        program.insert_call(position, call);
    }

    /// Remove one call (§2.6.1 item 3). No-op on empty programs.
    pub fn remove_call(&self, program: &mut Program, rng: &mut StdRng) {
        if program.is_empty() {
            return;
        }
        let victim = rng.gen_range(0..program.len());
        program.remove_call(victim);
    }

    /// Randomize one argument of one call, honouring its type semantics and
    /// preferring known-interesting values (§2.6.1 item 4).
    pub fn mutate_arg(&self, program: &mut Program, table: &[SyscallDesc], rng: &mut StdRng) {
        if program.is_empty() {
            return;
        }
        // Directed mutators pick the victim call distance-weighted, so
        // argument churn concentrates on the calls nearest the target; the
        // undirected path keeps its original single uniform draw.
        let call_idx = match &self.distance {
            None => rng.gen_range(0..program.len()),
            Some(map) => {
                let weights: Vec<f64> = program
                    .calls
                    .iter()
                    .map(|c| map.multiplier(c.desc))
                    .collect();
                weighted_index(&weights, rng).unwrap_or(0)
            }
        };
        let desc = &table[program.calls[call_idx].desc];
        if desc.args.is_empty() {
            return;
        }
        let arg_idx = rng.gen_range(0..desc.args.len());
        let ty = &desc.args[arg_idx].ty;
        let new_value = match ty {
            // Resource args re-wire to another producer or degrade.
            ArgType::Res(wanted) => {
                let producers = producers_before(program, table, call_idx, *wanted);
                if let Some(target) = producers.choose(rng) {
                    ArgValue::Ref(*target)
                } else {
                    ArgValue::Int(*INTERESTING.choose(rng).unwrap())
                }
            }
            other => gen_arg(other, table, program, call_idx, rng),
        };
        program.calls[call_idx].args[arg_idx] = new_value;
    }
}

impl Default for Mutator {
    fn default() -> Self {
        Mutator::new(MutatePolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;
    use crate::table::build_table;
    use rand::SeedableRng;

    fn setup() -> (Vec<SyscallDesc>, Mutator, StdRng) {
        (build_table(), Mutator::default(), StdRng::seed_from_u64(99))
    }

    #[test]
    fn mutations_preserve_validity() {
        let (table, mutator, mut rng) = setup();
        let deny = HashSet::new();
        let donor = gen_program(&table, 8, &deny, &mut rng);
        for _ in 0..500 {
            let mut prog = gen_program(&table, 8, &deny, &mut rng);
            mutator.mutate(&mut prog, &table, Some(&donor), &mut rng);
            prog.validate(&table)
                .unwrap_or_else(|e| panic!("invalid after mutation: {e}\n{prog:?}"));
        }
    }

    #[test]
    fn length_never_exceeds_cap_via_add() {
        let (table, mutator, mut rng) = setup();
        let deny = HashSet::new();
        let mut prog = gen_program(&table, 12, &deny, &mut rng);
        for _ in 0..300 {
            mutator.mutate(&mut prog, &table, None, &mut rng);
            assert!(
                prog.len() <= mutator.policy().max_len + 1,
                "len {} exceeded cap",
                prog.len()
            );
        }
    }

    #[test]
    fn all_operators_fire_over_many_mutations() {
        let (table, mutator, mut rng) = setup();
        let deny = HashSet::new();
        let donor = gen_program(&table, 8, &deny, &mut rng);
        let mut seen = HashSet::new();
        for _ in 0..400 {
            let mut prog = gen_program(&table, 6, &deny, &mut rng);
            seen.insert(mutator.mutate(&mut prog, &table, Some(&donor), &mut rng));
        }
        for op in [
            MutationOp::Splice,
            MutationOp::AddCall,
            MutationOp::RemoveCall,
            MutationOp::MutateArg,
        ] {
            assert!(seen.contains(&op), "{op:?} never fired");
        }
    }

    #[test]
    fn splice_skipped_without_donor() {
        let (table, mutator, mut rng) = setup();
        let deny = HashSet::new();
        for _ in 0..300 {
            let mut prog = gen_program(&table, 6, &deny, &mut rng);
            let op = mutator.mutate(&mut prog, &table, None, &mut rng);
            assert_ne!(op, MutationOp::Splice);
        }
    }

    #[test]
    fn empty_program_gets_a_call() {
        let (table, mutator, mut rng) = setup();
        let mut prog = Program::new();
        let op = mutator.mutate(&mut prog, &table, None, &mut rng);
        assert_eq!(op, MutationOp::AddCall);
        assert_eq!(prog.len(), 1);
        prog.validate(&table).unwrap();
    }

    #[test]
    fn directed_mutator_preserves_validity_and_steers_to_target() {
        use crate::distance::{DirectedTarget, DistanceMap};
        let table = build_table();
        let map = DistanceMap::build(&table, &DirectedTarget::Channel("net-softirq".into()));
        let directed = Mutator::directed(MutatePolicy::default(), Some(map));
        let undirected = Mutator::default();
        let deny = HashSet::new();
        let mut rng = StdRng::seed_from_u64(31);
        let mut directed_hits = 0;
        let mut undirected_hits = 0;
        for _ in 0..200 {
            let mut a = gen_program(&table, 4, &deny, &mut rng);
            let mut b = a.clone();
            for _ in 0..6 {
                directed.mutate(&mut a, &table, None, &mut rng);
                undirected.mutate(&mut b, &table, None, &mut rng);
            }
            a.validate(&table)
                .unwrap_or_else(|e| panic!("directed mutation broke validity: {e}\n{a:?}"));
            directed_hits += a
                .call_names(&table)
                .iter()
                .filter(|n| **n == "sendto")
                .count();
            undirected_hits += b
                .call_names(&table)
                .iter()
                .filter(|n| **n == "sendto")
                .count();
        }
        assert!(
            directed_hits > undirected_hits,
            "directed {directed_hits} vs undirected {undirected_hits} sendto calls"
        );
    }

    #[test]
    fn directed_none_matches_undirected_byte_for_byte() {
        let table = build_table();
        let deny = HashSet::new();
        let plain = Mutator::default();
        let none_directed = Mutator::directed(MutatePolicy::default(), None);
        let mut a = StdRng::seed_from_u64(41);
        let mut b = StdRng::seed_from_u64(41);
        for _ in 0..100 {
            let mut pa = gen_program(&table, 6, &deny, &mut a);
            let mut pb = gen_program(&table, 6, &deny, &mut b);
            assert_eq!(pa, pb);
            let donor = pa.clone();
            let op_a = plain.mutate(&mut pa, &table, Some(&donor), &mut a);
            let op_b = none_directed.mutate(&mut pb, &table, Some(&donor), &mut b);
            assert_eq!(op_a, op_b);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn denylist_respected_by_add() {
        let table = build_table();
        let deny: HashSet<String> = table
            .iter()
            .filter(|d| d.name != "sync")
            .map(|d| d.name.to_string())
            .collect();
        let mutator = Mutator::new(MutatePolicy {
            denylist: deny,
            ..MutatePolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let mut prog = Program::new();
        for _ in 0..20 {
            mutator.add_call(&mut prog, &table, &mut rng);
        }
        for name in prog.call_names(&table) {
            assert_eq!(name, "sync");
        }
    }
}
