//! Call-selection bias: SYZKALLER "computes a 'bias' score across the
//! syscalls already present in the program to select a syscall that is
//! likely to interact with the calls already present" (§2.6.1, item 2).
//!
//! A candidate scores higher when it shares an interface group with an
//! existing call, consumes a resource the program already produces, or
//! produces a resource the program already consumes.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use crate::desc::{ArgType, SyscallDesc};
use crate::distance::DistanceMap;
use crate::program::Program;

/// Relative selection weights for one candidate syscall against the current
/// program.
pub fn bias_weight(table: &[SyscallDesc], program: &Program, candidate: usize) -> f64 {
    let cand = &table[candidate];
    let mut weight = 1.0;
    for call in &program.calls {
        let present = &table[call.desc];
        if present.group == cand.group {
            weight += 1.5;
        }
        // candidate consumes something present produces
        if let Some(produced) = present.produces {
            if cand
                .args
                .iter()
                .any(|a| matches!(a.ty, ArgType::Res(wanted) if wanted.accepts(produced)))
            {
                weight += 3.0;
            }
        }
        // candidate produces something present consumes
        if let Some(produced) = cand.produces {
            if present
                .args
                .iter()
                .any(|a| matches!(a.ty, ArgType::Res(wanted) if wanted.accepts(produced)))
            {
                weight += 2.0;
            }
        }
    }
    weight
}

/// Pick a syscall description index, weighted by [`bias_weight`], skipping
/// names in `denylist`. Returns `None` when everything is denied.
pub fn pick_biased(
    table: &[SyscallDesc],
    program: &Program,
    denylist: &HashSet<String>,
    rng: &mut StdRng,
) -> Option<usize> {
    pick_biased_directed(table, program, denylist, None, rng)
}

/// [`pick_biased`] with an optional directed-fuzzing distance map folded
/// in: each candidate's weight is multiplied by
/// [`DistanceMap::multiplier`]. With `distance = None` this consumes the
/// exact same RNG draws as the undirected picker, so existing campaigns
/// replay byte-identically.
pub fn pick_biased_directed(
    table: &[SyscallDesc],
    program: &Program,
    denylist: &HashSet<String>,
    distance: Option<&DistanceMap>,
    rng: &mut StdRng,
) -> Option<usize> {
    let candidates: Vec<usize> = (0..table.len())
        .filter(|&i| !denylist.contains(table[i].name))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let weights: Vec<f64> = candidates
        .iter()
        .map(|&i| {
            let w = bias_weight(table, program, i);
            match distance {
                Some(map) => w * map.multiplier(i),
                None => w,
            }
        })
        .collect();
    weighted_index(&weights, rng).map(|pos| candidates[pos])
}

/// Roulette-wheel selection over `weights`, returning a position into the
/// slice. A degenerate total (zero, negative, NaN, or infinite — which
/// would make `gen_range` panic) falls back to a uniform pick instead of
/// aborting the campaign.
pub(crate) fn weighted_index(weights: &[f64], rng: &mut StdRng) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if !total.is_finite() || total <= 0.0 {
        return Some(rng.gen_range(0..weights.len()));
    }
    let mut pick = rng.gen_range(0.0..total);
    for (idx, w) in weights.iter().enumerate() {
        if pick < *w {
            return Some(idx);
        }
        pick -= w;
    }
    Some(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArgValue, Call};
    use crate::table::{build_table, find};
    use rand::SeedableRng;

    #[test]
    fn consumers_of_produced_resources_score_higher() {
        let table = build_table();
        let socket = find(&table, "socket").unwrap();
        let sendto = find(&table, "sendto").unwrap();
        let alarm = find(&table, "alarm").unwrap();
        let prog = Program {
            calls: vec![Call {
                desc: socket,
                args: vec![ArgValue::Int(2), ArgValue::Int(1), ArgValue::Int(0)],
            }],
        };
        let w_sendto = bias_weight(&table, &prog, sendto);
        let w_alarm = bias_weight(&table, &prog, alarm);
        assert!(
            w_sendto > w_alarm,
            "sendto ({w_sendto}) should outweigh alarm ({w_alarm})"
        );
    }

    #[test]
    fn empty_program_is_uniform() {
        let table = build_table();
        let prog = Program::new();
        for i in 0..table.len() {
            assert_eq!(bias_weight(&table, &prog, i), 1.0);
        }
    }

    #[test]
    fn full_denylist_yields_none() {
        let table = build_table();
        let deny: HashSet<String> = table.iter().map(|d| d.name.to_string()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pick_biased(&table, &Program::new(), &deny, &mut rng), None);
    }

    #[test]
    fn degenerate_weight_totals_fall_back_to_uniform() {
        // Regression: `gen_range(0.0..total)` panics when the weight sum is
        // zero, NaN, or infinite. The picker must degrade to a uniform
        // choice instead of aborting the campaign.
        let mut rng = StdRng::seed_from_u64(11);
        for weights in [
            vec![0.0, 0.0, 0.0],
            vec![f64::NAN, 1.0],
            vec![f64::INFINITY, 1.0],
            vec![-1.0, -2.0],
        ] {
            for _ in 0..50 {
                let picked = super::weighted_index(&weights, &mut rng).unwrap();
                assert!(picked < weights.len());
            }
        }
        assert_eq!(super::weighted_index(&[], &mut rng), None);
    }

    #[test]
    fn directed_distance_amplifies_target_calls() {
        use crate::distance::{DirectedTarget, DistanceMap};
        let table = build_table();
        let map = DistanceMap::build(&table, &DirectedTarget::Syscall("socket".into()));
        let socket = find(&table, "socket").unwrap();
        let deny = HashSet::new();
        let prog = Program::new();
        let trials = 2000;
        let mut undirected_hits = 0;
        let mut directed_hits = 0;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..trials {
            if pick_biased(&table, &prog, &deny, &mut rng) == Some(socket) {
                undirected_hits += 1;
            }
            if pick_biased_directed(&table, &prog, &deny, Some(&map), &mut rng) == Some(socket) {
                directed_hits += 1;
            }
        }
        assert!(
            directed_hits > undirected_hits * 2,
            "directed {directed_hits} vs undirected {undirected_hits}"
        );
    }

    #[test]
    fn none_distance_is_rng_identical_to_undirected() {
        let table = build_table();
        let deny = HashSet::new();
        let prog = Program::new();
        let mut a = StdRng::seed_from_u64(23);
        let mut b = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            assert_eq!(
                pick_biased(&table, &prog, &deny, &mut a),
                pick_biased_directed(&table, &prog, &deny, None, &mut b)
            );
        }
    }

    #[test]
    fn pick_biased_prefers_related_calls_statistically() {
        let table = build_table();
        let socket = find(&table, "socket").unwrap();
        let prog = Program {
            calls: vec![Call {
                desc: socket,
                args: vec![ArgValue::Int(2), ArgValue::Int(1), ArgValue::Int(0)],
            }],
        };
        let deny = HashSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net_hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            let idx = pick_biased(&table, &prog, &deny, &mut rng).unwrap();
            if table[idx].group == crate::desc::InterfaceGroup::Net {
                net_hits += 1;
            }
        }
        let net_count = table
            .iter()
            .filter(|d| d.group == crate::desc::InterfaceGroup::Net)
            .count();
        let uniform_expectation = trials * net_count / table.len();
        assert!(
            net_hits > uniform_expectation,
            "net picked {net_hits} <= uniform {uniform_expectation}"
        );
    }
}
