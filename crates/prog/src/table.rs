//! The fuzzable syscall description table.
//!
//! Each entry pairs a kernel syscall with typed argument specifications so
//! the generator and mutator produce semantically plausible calls (§2.6.1).
//! The numbers come from `torpedo_kernel::SYSCALL_TABLE`; a unit test pins
//! the two tables consistent.

use crate::desc::{ArgSpec, ArgType, InterfaceGroup, ResKind, SyscallDesc};

/// Paths the generator may reference (all resolvable in the simulated VFS,
/// plus a few that are deliberately absent or ELOOP-y).
pub const PATHS: &[&str] = &[
    "/lib/x86_64-Linux-gnu/libc.so.6",
    "/proc/sys/fs/mqueue/msg_max",
    "/etc/passwd",
    "/dev/null",
    "mntpoint/tmp",
    "testdir_1",
    "getxattr01testfile",
    "./test_eloop",
    "/no/such/file",
    "workfile-0",
    "workfile-1",
];

/// Extended-attribute names seen in the Moonshine-style seeds.
pub const XATTR_NAMES: &[&str] = &[
    "system.posix_acl_access",
    "user.torpedo",
    "security.selinux",
];

/// Socket families offered to the generator: the built-ins, several *valid
/// but modular* families (the Table 4.2 modprobe trigger), and one invalid.
pub const SOCKET_FAMILIES: &[u64] = &[1, 2, 10, 16, 17, 5, 9, 21, 40, 4096];

fn a(name: &'static str, ty: ArgType) -> ArgSpec {
    ArgSpec { name, ty }
}

fn d(
    name: &'static str,
    args: Vec<ArgSpec>,
    produces: Option<ResKind>,
    group: InterfaceGroup,
    blocking: bool,
) -> SyscallDesc {
    let nr = torpedo_kernel::nr_of(name)
        .unwrap_or_else(|| panic!("{name} missing from kernel syscall table"));
    SyscallDesc {
        name,
        nr,
        args,
        produces,
        group,
        blocking,
    }
}

/// Build the full description table.
pub fn build_table() -> Vec<SyscallDesc> {
    use ArgType::*;
    use InterfaceGroup::*;
    vec![
        // ---------------- file ----------------
        d(
            "open",
            vec![
                a("path", Path(PATHS)),
                a(
                    "flags",
                    Flags(&[
                        0, 0x1, 0x2, 0x40, 0x80, 0x200, 0x400, 0x8000, 0x80000, 0x200000, 0x680002,
                    ]),
                ),
                a("mode", OneOf(&[0, 0o600, 0o644, 0o777, 0x20, 0x124])),
            ],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        d(
            "creat",
            vec![
                a("path", Path(PATHS)),
                a("mode", OneOf(&[0o600, 0o644, 0x124, 0x1a4, 0o777])),
            ],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        d(
            "close",
            vec![a("fd", Res(ResKind::AnyFd))],
            None,
            File,
            false,
        ),
        d(
            "read",
            vec![a("fd", Res(ResKind::AnyFd)), a("buf", Ptr), a("count", Len)],
            None,
            File,
            false,
        ),
        d(
            "write",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("buf", Ptr),
                a("count", Len),
            ],
            None,
            File,
            false,
        ),
        d(
            "lseek",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a(
                    "offset",
                    IntRange {
                        min: 0,
                        max: u64::MAX,
                    },
                ),
                a("whence", OneOf(&[0, 1, 2, 3, 4, 9])),
            ],
            None,
            File,
            false,
        ),
        d(
            "readlink",
            vec![a("path", Path(PATHS)), a("buf", Ptr), a("bufsiz", Len)],
            None,
            File,
            false,
        ),
        d(
            "chmod",
            vec![
                a("path", Path(PATHS)),
                a("mode", OneOf(&[0o600, 0o644, 0o755, 0x1ff, 0o777])),
            ],
            None,
            File,
            false,
        ),
        d(
            "fallocate",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("mode", OneOf(&[0, 1, 2, 3])),
                a(
                    "offset",
                    IntRange {
                        min: 0,
                        max: 1 << 40,
                    },
                ),
                a(
                    "len",
                    IntRange {
                        min: 0,
                        max: 1 << 40,
                    },
                ),
            ],
            None,
            File,
            false,
        ),
        d(
            "ftruncate",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a(
                    "length",
                    IntRange {
                        min: 0,
                        max: 1 << 40,
                    },
                ),
            ],
            None,
            File,
            false,
        ),
        d(
            "fsync",
            vec![a("fd", Res(ResKind::FileFd))],
            None,
            Sync,
            false,
        ),
        d(
            "fdatasync",
            vec![a("fd", Res(ResKind::FileFd))],
            None,
            Sync,
            false,
        ),
        d("sync", vec![], None, Sync, false),
        d(
            "syncfs",
            vec![a("fd", Res(ResKind::FileFd))],
            None,
            Sync,
            false,
        ),
        d(
            "openat",
            vec![
                a("dirfd", OneOf(&[0xffffff9c, 3, 0])),
                a("path", Path(PATHS)),
                a("flags", Flags(&[0, 0x1, 0x2, 0x40, 0x200, 0x8000])),
                a("mode", OneOf(&[0, 0o600, 0o644])),
            ],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        d(
            "pread64",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("buf", Ptr),
                a("count", Len),
                a(
                    "offset",
                    IntRange {
                        min: 0,
                        max: 1 << 20,
                    },
                ),
            ],
            None,
            File,
            false,
        ),
        d(
            "pwrite64",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("buf", Ptr),
                a("count", Len),
                a(
                    "offset",
                    IntRange {
                        min: 0,
                        max: 1 << 20,
                    },
                ),
            ],
            None,
            File,
            false,
        ),
        d(
            "truncate",
            vec![
                a("path", Path(PATHS)),
                a(
                    "length",
                    IntRange {
                        min: 0,
                        max: 1 << 40,
                    },
                ),
            ],
            None,
            File,
            false,
        ),
        d(
            "fchmod",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("mode", OneOf(&[0o600, 0o644, 0o777])),
            ],
            None,
            File,
            false,
        ),
        d(
            "fstat",
            vec![a("fd", Res(ResKind::AnyFd)), a("statbuf", Ptr)],
            None,
            File,
            false,
        ),
        d(
            "dup3",
            vec![
                a("oldfd", Res(ResKind::AnyFd)),
                a("newfd", IntRange { min: 3, max: 64 }),
                a("flags", OneOf(&[0, 0x80000])),
            ],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        d(
            "eventfd2",
            vec![
                a("initval", IntRange { min: 0, max: 16 }),
                a("flags", OneOf(&[0, 1, 0x80000])),
            ],
            Some(ResKind::PipeFd),
            Net,
            false,
        ),
        d(
            "stat",
            vec![a("path", Path(PATHS)), a("statbuf", Ptr)],
            None,
            File,
            false,
        ),
        d(
            "access",
            vec![a("path", Path(PATHS)), a("mode", OneOf(&[0, 1, 2, 4]))],
            None,
            File,
            false,
        ),
        d(
            "mkdir",
            vec![a("path", Path(PATHS)), a("mode", OneOf(&[0o700, 0o755]))],
            None,
            File,
            false,
        ),
        d("unlink", vec![a("path", Path(PATHS))], None, File, false),
        d(
            "rename",
            vec![a("oldpath", Path(PATHS)), a("newpath", Path(PATHS))],
            None,
            File,
            false,
        ),
        d(
            "dup",
            vec![a("fd", Res(ResKind::AnyFd))],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        d(
            "ioctl",
            vec![
                a("fd", Res(ResKind::AnyFd)),
                a(
                    "request",
                    OneOf(&[0x8008_7601, 0xc020_64a5, 0x5401, 0x1234]),
                ),
                a("argp", Ptr),
            ],
            None,
            File,
            false,
        ),
        d(
            "inotify_init",
            vec![],
            Some(ResKind::InotifyFd),
            File,
            false,
        ),
        d(
            "inotify_add_watch",
            vec![
                a("fd", Res(ResKind::InotifyFd)),
                a("path", Path(PATHS)),
                a("mask", Flags(&[1, 2, 4, 8, 0x100, 0xfff])),
            ],
            None,
            File,
            false,
        ),
        d(
            "getdents",
            vec![
                a("fd", Res(ResKind::FileFd)),
                a("dirp", Ptr),
                a("count", Len),
            ],
            None,
            File,
            false,
        ),
        d(
            "flock",
            vec![
                a("fd", Res(ResKind::AnyFd)),
                a("operation", OneOf(&[1, 2, 4, 8])),
            ],
            None,
            File,
            false,
        ),
        d(
            "memfd_create",
            vec![a("name", Ptr), a("flags", Flags(&[0, 1, 2]))],
            Some(ResKind::FileFd),
            File,
            false,
        ),
        // ---------------- xattr ----------------
        d(
            "setxattr",
            vec![
                a("path", Path(PATHS)),
                a("name", XattrName),
                a("value", Ptr),
                a("size", IntRange { min: 0, max: 0x100 }),
                a("flags", OneOf(&[0, 1, 2])),
            ],
            None,
            Xattr,
            false,
        ),
        d(
            "getxattr",
            vec![
                a("path", Path(PATHS)),
                a("name", XattrName),
                a("value", Ptr),
                a("size", IntRange { min: 0, max: 0x100 }),
            ],
            None,
            Xattr,
            false,
        ),
        d(
            "listxattr",
            vec![a("path", Path(PATHS)), a("list", Ptr), a("size", Len)],
            None,
            Xattr,
            false,
        ),
        d(
            "removexattr",
            vec![a("path", Path(PATHS)), a("name", XattrName)],
            None,
            Xattr,
            false,
        ),
        // ---------------- memory ----------------
        d(
            "mmap",
            vec![
                a("addr", Ptr),
                a(
                    "length",
                    IntRange {
                        min: 0,
                        max: 1 << 26,
                    },
                ),
                a("prot", Flags(&[0, 1, 2, 4])),
                a("flags", Flags(&[0x2, 0x10, 0x20, 0x4000, 0x20010, 0x32])),
                a("fd", OneOf(&[u64::MAX, 0, 3])),
                a("offset", OneOf(&[0, 0x1000])),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "munmap",
            vec![
                a("addr", Ptr),
                a(
                    "length",
                    IntRange {
                        min: 0,
                        max: 1 << 26,
                    },
                ),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "mprotect",
            vec![
                a("addr", Ptr),
                a(
                    "len",
                    IntRange {
                        min: 0,
                        max: 1 << 20,
                    },
                ),
                a("prot", Flags(&[0, 1, 2, 4])),
            ],
            None,
            Memory,
            false,
        ),
        d("brk", vec![a("addr", Ptr)], None, Memory, false),
        d(
            "mremap",
            vec![
                a("old", Ptr),
                a(
                    "old_size",
                    IntRange {
                        min: 0,
                        max: 1 << 24,
                    },
                ),
                a(
                    "new_size",
                    IntRange {
                        min: 0,
                        max: 1 << 24,
                    },
                ),
                a("flags", OneOf(&[0, 1, 2])),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "madvise",
            vec![
                a("addr", Ptr),
                a("length", Len),
                a("advice", IntRange { min: 0, max: 30 }),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "mlock",
            vec![
                a("addr", Ptr),
                a(
                    "len",
                    IntRange {
                        min: 0,
                        max: 1 << 24,
                    },
                ),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "munlock",
            vec![
                a("addr", Ptr),
                a(
                    "len",
                    IntRange {
                        min: 0,
                        max: 1 << 24,
                    },
                ),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "getrandom",
            vec![
                a("buf", Ptr),
                a("count", Len),
                a("flags", OneOf(&[0, 1, 2])),
            ],
            None,
            Memory,
            false,
        ),
        d(
            "futex",
            vec![
                a("uaddr", Ptr),
                a("op", OneOf(&[0, 1, 0x80, 0x81])),
                a("val", IntRange { min: 0, max: 16 }),
            ],
            None,
            Memory,
            true,
        ),
        d(
            "msync",
            vec![
                a("addr", Ptr),
                a("length", Len),
                a("flags", OneOf(&[1, 2, 4])),
            ],
            None,
            Sync,
            false,
        ),
        // ---------------- network ----------------
        d(
            "socket",
            vec![
                a("domain", OneOf(SOCKET_FAMILIES)),
                a("type", OneOf(&[1, 2, 3, 5, 0, 11])),
                a("protocol", OneOf(&[0, 1, 6, 9, 17, 99, 255])),
            ],
            Some(ResKind::SockFd),
            Net,
            false,
        ),
        d(
            "socketpair",
            vec![
                a("domain", OneOf(&[1, 4])),
                a("type", OneOf(&[1, 2, 3])),
                a("protocol", OneOf(&[0, 7])),
                a("sv", Ptr),
            ],
            Some(ResKind::PipeFd),
            Net,
            false,
        ),
        d(
            "bind",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("addr", Ptr),
                a("addrlen", Len),
            ],
            None,
            Net,
            false,
        ),
        d(
            "connect",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("addr", Ptr),
                a("addrlen", Len),
            ],
            None,
            Net,
            false,
        ),
        d(
            "listen",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("backlog", IntRange { min: 0, max: 128 }),
            ],
            None,
            Net,
            false,
        ),
        d(
            "accept",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("addr", Ptr),
                a("addrlen", Ptr),
            ],
            Some(ResKind::SockFd),
            Net,
            true,
        ),
        d(
            "sendto",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("buf", Ptr),
                a("len", Len),
                a("flags", OneOf(&[0, 0x40, 0x4000])),
                a("addr", Ptr),
                a("addrlen", OneOf(&[0, 0xc, 0x10])),
            ],
            None,
            Net,
            false,
        ),
        d(
            "recvfrom",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("buf", Ptr),
                a("len", Len),
                a("flags", OneOf(&[0, 0x40])),
                a("addr", Ptr),
                a("addrlen", Ptr),
            ],
            None,
            Net,
            true,
        ),
        d(
            "setsockopt",
            vec![
                a("fd", Res(ResKind::SockFd)),
                a("level", OneOf(&[0, 1, 6, 41])),
                a("optname", IntRange { min: 0, max: 64 }),
                a("optval", Ptr),
                a("optlen", Len),
            ],
            None,
            Net,
            false,
        ),
        d(
            "shutdown",
            vec![a("fd", Res(ResKind::SockFd)), a("how", OneOf(&[0, 1, 2]))],
            None,
            Net,
            false,
        ),
        d(
            "pipe",
            vec![a("pipefd", Ptr)],
            Some(ResKind::PipeFd),
            Net,
            false,
        ),
        d(
            "epoll_create1",
            vec![a("flags", OneOf(&[0, 0x80000]))],
            Some(ResKind::PipeFd),
            Net,
            false,
        ),
        d(
            "epoll_ctl",
            vec![
                a("epfd", Res(ResKind::PipeFd)),
                a("op", OneOf(&[1, 2, 3])),
                a("fd", Res(ResKind::AnyFd)),
                a("event", Ptr),
            ],
            None,
            Net,
            false,
        ),
        d(
            "poll",
            vec![
                a("fds", Ptr),
                a("nfds", IntRange { min: 0, max: 8 }),
                a("timeout", OneOf(&[0, 10, 100, 5000, u64::MAX])),
            ],
            None,
            Net,
            true,
        ),
        // ---------------- process / signal ----------------
        d("getpid", vec![], Some(ResKind::Pid), Process, false),
        d("getuid", vec![], None, Process, false),
        d(
            "setuid",
            vec![a("uid", OneOf(&[0, 1000, 0xfffe, 0xffff_ffff]))],
            None,
            Process,
            false,
        ),
        d(
            "getrlimit",
            vec![a("resource", OneOf(&[0, 1, 3, 7, 0x3e8])), a("rlim", Ptr)],
            None,
            Process,
            false,
        ),
        d(
            "setrlimit",
            vec![
                a("resource", OneOf(&[0, 1, 3, 7])),
                a(
                    "rlim",
                    IntRange {
                        min: 4096,
                        max: 1 << 34,
                    },
                ),
            ],
            None,
            Process,
            false,
        ),
        d(
            "alarm",
            vec![a("seconds", OneOf(&[0, 1, 4, 60]))],
            None,
            Time,
            false,
        ),
        d("pause", vec![], None, Time, true),
        d(
            "nanosleep",
            vec![a("req", Ptr), a("rem", Ptr)],
            None,
            Time,
            true,
        ),
        d("sched_yield", vec![], None, Time, false),
        d(
            "kill",
            vec![a("pid", Res(ResKind::Pid)), a("sig", SignalNum)],
            None,
            Signal,
            false,
        ),
        d(
            "rt_sigaction",
            vec![a("signum", SignalNum), a("act", Ptr), a("oldact", Ptr)],
            None,
            Signal,
            false,
        ),
        d("rt_sigreturn", vec![], None, Signal, false),
        d(
            "rseq",
            vec![
                a("rseq", Ptr),
                a("rseq_len", OneOf(&[0x20, 0x1000])),
                a("flags", OneOf(&[0, 1, 3])),
                a(
                    "sig",
                    IntRange {
                        min: 0,
                        max: u32::MAX as u64,
                    },
                ),
            ],
            None,
            Signal,
            false,
        ),
        d(
            "kcmp",
            vec![
                a(
                    "pid1",
                    IntRange {
                        min: 0,
                        max: 0x2000,
                    },
                ),
                a("pid2", Res(ResKind::Pid)),
                a("type", IntRange { min: 0, max: 10 }),
                a("idx1", Ptr),
                a("idx2", Ptr),
            ],
            None,
            Process,
            false,
        ),
        d(
            "capget",
            vec![a("hdr", Ptr), a("data", Ptr)],
            None,
            Process,
            false,
        ),
        d(
            "prctl",
            vec![a("option", IntRange { min: 0, max: 64 }), a("arg2", Ptr)],
            None,
            Process,
            false,
        ),
        d("uname", vec![a("buf", Ptr)], None, Process, false),
        d("sysinfo", vec![a("info", Ptr)], None, Process, false),
        d("times", vec![a("buf", Ptr)], None, Process, false),
        d(
            "getcpu",
            vec![a("cpu", Ptr), a("node", Ptr)],
            None,
            Process,
            false,
        ),
        d(
            "clock_gettime",
            vec![a("clockid", OneOf(&[0, 1, 4])), a("tp", Ptr)],
            None,
            Time,
            false,
        ),
    ]
}

/// Look up a description index by name.
///
/// O(n) scan — fine for one-off lookups; repeated resolution (parsing,
/// seed loading) should build a [`NameIndex`] once instead.
pub fn find(table: &[SyscallDesc], name: &str) -> Option<usize> {
    table.iter().position(|desc| desc.name == name)
}

/// A name → table-index map built once, so per-call resolution during
/// deserialization and seed loading is O(1) instead of an O(n) scan.
#[derive(Debug, Clone)]
pub struct NameIndex {
    by_name: std::collections::HashMap<&'static str, usize>,
}

impl NameIndex {
    /// Build the index for `table`.
    pub fn new(table: &[SyscallDesc]) -> NameIndex {
        NameIndex {
            by_name: table
                .iter()
                .enumerate()
                .map(|(i, desc)| (desc.name, i))
                .collect(),
        }
    }

    /// The table index of `name`, if present.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent_with_kernel() {
        let table = build_table();
        assert!(table.len() >= 70, "only {} descriptions", table.len());
        for desc in &table {
            assert_eq!(
                torpedo_kernel::nr_of(desc.name),
                Some(desc.nr),
                "{} number mismatch",
                desc.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let table = build_table();
        let mut seen = std::collections::HashSet::new();
        for desc in &table {
            assert!(seen.insert(desc.name), "duplicate {}", desc.name);
        }
    }

    #[test]
    fn blocking_calls_match_paper_denylist() {
        let table = build_table();
        for name in ["pause", "nanosleep", "poll", "recvfrom", "accept"] {
            let idx = find(&table, name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(table[idx].blocking, "{name} must be marked blocking");
        }
        assert!(!table[find(&table, "sync").unwrap()].blocking);
    }

    #[test]
    fn socket_produces_sockfd_and_offers_modular_families() {
        let table = build_table();
        let socket = &table[find(&table, "socket").unwrap()];
        assert_eq!(socket.produces, Some(ResKind::SockFd));
        assert!(SOCKET_FAMILIES.contains(&9), "modular family present");
        assert!(SOCKET_FAMILIES.contains(&4096), "invalid family present");
    }

    #[test]
    fn find_works() {
        let table = build_table();
        assert!(find(&table, "sync").is_some());
        assert!(find(&table, "bogus").is_none());
    }
}
