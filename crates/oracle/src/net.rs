//! The network oracle: detects rx/tx softirq amplification.
//!
//! Once a window's transmits exceed the NAPI budget, packet-completion
//! processing migrates from the sender's syscall context into `ksoftirqd`
//! on whatever core takes the completion interrupt — CPU the sender's
//! cpuset and quota controllers never see. From `/proc/stat` that shows
//! up as SOFTIRQ time concentrated on cores *outside* the fuzzing cpuset,
//! which is exactly what this oracle flags.
//!
//! Like the Appendix A analysis, the known framework sidecar core (the
//! persistent SOFTIRQ side effect of the collider) is excluded so the
//! heuristic does not flag TORPEDO's own overhead.

use crate::observation::Observation;
use crate::violation::{HeuristicKind, Violation};
use crate::Oracle;

/// Thresholds for the network oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct NetThresholds {
    /// Maximum tolerated SOFTIRQ percentage on any non-fuzzing,
    /// non-sidecar core.
    pub foreign_softirq_max: f64,
    /// Maximum tolerated machine-wide SOFTIRQ percentage.
    pub total_softirq_max: f64,
}

impl Default for NetThresholds {
    fn default() -> Self {
        NetThresholds {
            foreign_softirq_max: 6.0,
            total_softirq_max: 2.5,
        }
    }
}

/// The network oracle.
#[derive(Debug, Clone, Default)]
pub struct NetOracle {
    thresholds: NetThresholds,
}

impl NetOracle {
    /// An oracle with default thresholds.
    pub fn new() -> NetOracle {
        NetOracle::default()
    }

    /// An oracle with custom thresholds.
    pub fn with_thresholds(thresholds: NetThresholds) -> NetOracle {
        NetOracle { thresholds }
    }
}

/// Machine-wide SOFTIRQ percentage of an observation.
fn total_softirq_percent(obs: &Observation) -> f64 {
    if obs.per_core.is_empty() {
        return 0.0;
    }
    let softirq: u64 = obs.per_core.iter().map(|c| c.softirq.as_micros()).sum();
    let total: u64 = obs.per_core.iter().map(|c| c.total().as_micros()).sum();
    if total == 0 {
        0.0
    } else {
        100.0 * softirq as f64 / total as f64
    }
}

impl Oracle for NetOracle {
    fn name(&self) -> &'static str {
        "net"
    }

    /// Score: machine-wide SOFTIRQ percentage — more interrupt servicing
    /// is more indicative of completion-amplification behaviour.
    fn score(&self, obs: &Observation) -> f64 {
        total_softirq_percent(obs)
    }

    fn flag(&self, obs: &Observation) -> Vec<Violation> {
        let mut violations = Vec::new();
        let fuzz = obs.fuzz_cores();
        for core in 0..obs.per_core.len() {
            if fuzz.contains(&core) || Some(core) == obs.sidecar_core {
                continue;
            }
            let row = &obs.per_core[core];
            let total = row.total().as_micros().max(1);
            let softirq_pct = 100.0 * row.softirq.as_micros() as f64 / total as f64;
            if softirq_pct > self.thresholds.foreign_softirq_max {
                violations.push(Violation {
                    heuristic: HeuristicKind::SoftirqOutsideCpuset,
                    core: Some(core),
                    measured: softirq_pct,
                    threshold: self.thresholds.foreign_softirq_max,
                });
            }
        }
        let total = total_softirq_percent(obs);
        if total > self.thresholds.total_softirq_max {
            violations.push(Violation {
                heuristic: HeuristicKind::SoftirqOutsideCpuset,
                core: None,
                measured: total,
                threshold: self.thresholds.total_softirq_max,
            });
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ContainerInfo;
    use torpedo_kernel::cpu::{CpuCategory, CpuTimes};
    use torpedo_kernel::time::Usecs;

    fn obs(softirq_frac: &[f64]) -> Observation {
        let window = Usecs::from_secs(5);
        let per_core = softirq_frac
            .iter()
            .map(|r| {
                let mut t = CpuTimes::default();
                let si = window.scale(*r);
                t.charge(CpuCategory::SoftIrq, si);
                t.charge(CpuCategory::Idle, window.saturating_sub(si));
                t
            })
            .collect();
        Observation {
            window,
            per_core,
            top: None,
            containers: vec![ContainerInfo {
                name: "fuzz-0".into(),
                cpuset: vec![0],
                cpu_quota: Some(1.0),
                memory_limit: None,
                memory_used: 0,
                io_bytes: 0,
                oom_events: 0,
            }],
            sidecar_core: Some(1),
            startup_times: Vec::new(),
        }
    }

    #[test]
    fn quiet_network_no_violations() {
        let o = obs(&[0.01, 0.02, 0.005, 0.0]);
        assert!(NetOracle::new().flag(&o).is_empty());
    }

    #[test]
    fn bulk_send_pattern_flags_foreign_softirq() {
        // NAPI-budget overflow shape: ksoftirqd burning a victim core.
        let o = obs(&[0.05, 0.02, 0.0, 0.25]);
        let violations = NetOracle::new().flag(&o);
        assert!(violations
            .iter()
            .any(|v| v.core == Some(3) && v.heuristic == HeuristicKind::SoftirqOutsideCpuset));
        assert!(
            violations.iter().any(|v| v.core.is_none()),
            "total fires too"
        );
    }

    #[test]
    fn fuzz_and_sidecar_cores_are_exempt() {
        let o = obs(&[0.30, 0.30, 0.0, 0.0]);
        let violations = NetOracle::new().flag(&o);
        assert!(!violations.iter().any(|v| v.core == Some(0)));
        assert!(!violations.iter().any(|v| v.core == Some(1)));
    }

    #[test]
    fn score_tracks_total_softirq() {
        let o = obs(&[0.2, 0.2]);
        assert!((NetOracle::new().score(&o) - 20.0).abs() < 0.5);
    }
}
