//! The CPU oracle — the oracle the paper's evaluation runs with.
//!
//! Its flagging heuristics are exactly Table 4.1:
//!
//! | heuristic                         | expectation            |
//! |-----------------------------------|------------------------|
//! | fuzzing core CPU utilization      | above some threshold   |
//! | idle core CPU utilization         | below some threshold   |
//! | total CPU utilization             | below some threshold   |
//! | system process CPU utilization    | below some threshold   |
//!
//! The score is machine-wide CPU utilization (§4.2: "CPU Utilization was
//! used as the Oracle score"). The known framework sidecar core is excluded
//! from the idle-core heuristic, per the Appendix A note.

use torpedo_kernel::top::TopCategory;

use crate::observation::Observation;
use crate::violation::{HeuristicKind, Violation};
use crate::Oracle;

/// Thresholds for the Table 4.1 heuristics, in percent.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuThresholds {
    /// A fuzzing core should stay above this busy percentage (workloads run
    /// flat out in the LoopUntilTime loop).
    pub fuzz_core_min: f64,
    /// A non-fuzzing core should stay below this busy percentage.
    pub idle_core_max: f64,
    /// Margin (in percentage points) added to the quota-derived total
    /// expectation before the total heuristic fires.
    pub total_margin: f64,
    /// Any tracked system-process category (docker, kworker, kauditd,
    /// journald) should stay below this percent of one core.
    pub sysproc_max: f64,
}

impl Default for CpuThresholds {
    fn default() -> Self {
        // Tuned exactly as §4.1 describes: by running the known-vulnerable
        // seed recreations and adjusting until baseline rounds are quiet.
        CpuThresholds {
            fuzz_core_min: 40.0,
            idle_core_max: 16.0,
            total_margin: 8.0,
            sysproc_max: 5.0,
        }
    }
}

/// The CPU oracle.
#[derive(Debug, Clone, Default)]
pub struct CpuOracle {
    thresholds: CpuThresholds,
}

impl CpuOracle {
    /// An oracle with the default (paper-tuned) thresholds.
    pub fn new() -> CpuOracle {
        CpuOracle::default()
    }

    /// An oracle with custom thresholds.
    pub fn with_thresholds(thresholds: CpuThresholds) -> CpuOracle {
        CpuOracle { thresholds }
    }

    /// The active thresholds.
    pub fn thresholds(&self) -> &CpuThresholds {
        &self.thresholds
    }
}

impl Oracle for CpuOracle {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn score(&self, obs: &Observation) -> f64 {
        obs.total_busy_percent()
    }

    fn flag(&self, obs: &Observation) -> Vec<Violation> {
        let t = &self.thresholds;
        let mut violations = Vec::new();

        // Heuristic 1: fuzzing cores should be busy.
        for core in obs.fuzz_cores() {
            let busy = obs.busy_percent(core);
            if busy < t.fuzz_core_min {
                violations.push(Violation {
                    heuristic: HeuristicKind::FuzzCoreBelowFloor,
                    core: Some(core),
                    measured: busy,
                    threshold: t.fuzz_core_min,
                });
            }
        }

        // Heuristic 2: everything else should be near idle.
        for core in obs.idle_cores() {
            let busy = obs.busy_percent(core);
            if busy > t.idle_core_max {
                violations.push(Violation {
                    heuristic: HeuristicKind::IdleCoreAboveCeiling,
                    core: Some(core),
                    measured: busy,
                    threshold: t.idle_core_max,
                });
            }
        }

        // Heuristic 3: the machine should not be busier than the configured
        // caps plus noise allow.
        let total = obs.total_busy_percent();
        let expected = obs.expected_total_percent(t.total_margin);
        if total > expected {
            violations.push(Violation {
                heuristic: HeuristicKind::TotalAboveExpected,
                core: None,
                measured: total,
                threshold: expected,
            });
        }

        // Heuristic 4: tracked system processes should be quiet.
        if let Some(top) = &obs.top {
            for category in [
                TopCategory::Docker,
                TopCategory::Kworker,
                TopCategory::Kauditd,
                TopCategory::Journald,
                TopCategory::KernelMisc,
            ] {
                let pct = top.category_percent(category);
                if pct > t.sysproc_max {
                    violations.push(Violation {
                        heuristic: HeuristicKind::SystemProcessAboveBaseline,
                        core: None,
                        measured: pct,
                        threshold: t.sysproc_max,
                    });
                }
            }
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ContainerInfo;
    use torpedo_kernel::cpu::{CpuCategory, CpuTimes};
    use torpedo_kernel::time::Usecs;

    /// Build an observation: (core busy fractions, fuzz cores, quota sum).
    fn obs(busy: &[f64], fuzz_cores: &[usize]) -> Observation {
        let window = Usecs::from_secs(5);
        let per_core = busy
            .iter()
            .map(|r| {
                let mut t = CpuTimes::default();
                let b = window.scale(*r);
                t.charge(CpuCategory::System, b.scale(0.7));
                t.charge(CpuCategory::User, b.scale(0.3));
                t.charge(CpuCategory::Idle, window.saturating_sub(b));
                t
            })
            .collect();
        let containers = fuzz_cores
            .iter()
            .map(|&c| ContainerInfo {
                name: format!("fuzz-{c}"),
                cpuset: vec![c],
                cpu_quota: Some(1.0),
                memory_limit: None,
                memory_used: 0,
                io_bytes: 0,
                oom_events: 0,
            })
            .collect();
        Observation {
            window,
            per_core,
            top: None,
            containers,
            sidecar_core: fuzz_cores.iter().max().map(|m| m + 1),
            startup_times: Vec::new(),
        }
    }

    #[test]
    fn quiet_baseline_produces_no_violations() {
        // 3 fuzz cores ~85%, sidecar 20%, rest ~4%: the Table A.1 shape.
        let busy = [
            0.85, 0.84, 0.87, 0.20, 0.04, 0.04, 0.06, 0.06, 0.04, 0.06, 0.06, 0.05,
        ];
        let o = obs(&busy, &[0, 1, 2]);
        let oracle = CpuOracle::new();
        let violations = oracle.flag(&o);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn sidecar_core_is_ignored() {
        let mut busy = vec![0.85, 0.85, 0.85];
        busy.push(0.50); // heavy sidecar softirq — must NOT flag
        busy.extend(vec![0.04; 8]);
        let o = obs(&busy, &[0, 1, 2]);
        let violations = CpuOracle::new().flag(&o);
        assert!(
            !violations
                .iter()
                .any(|v| v.core == Some(3) && v.heuristic == HeuristicKind::IdleCoreAboveCeiling),
            "sidecar flagged: {violations:?}"
        );
    }

    #[test]
    fn blocked_fuzzer_flags_fuzz_core_floor() {
        // Program went to sleep: fuzz core 0 nearly idle (the §4.1.2
        // 'pause/nanosleep' pattern).
        let busy = [
            0.05, 0.85, 0.85, 0.2, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04,
        ];
        let o = obs(&busy, &[0, 1, 2]);
        let violations = CpuOracle::new().flag(&o);
        assert!(violations
            .iter()
            .any(|v| v.heuristic == HeuristicKind::FuzzCoreBelowFloor && v.core == Some(0)));
    }

    #[test]
    fn oob_workload_flags_idle_cores_and_total() {
        // The Table A.3 socket-modprobe shape: work everywhere.
        let busy = [
            0.10, 0.67, 0.35, 0.30, 0.45, 0.40, 0.40, 0.35, 0.35, 0.40, 0.40, 0.40,
        ];
        let o = obs(&busy, &[0, 1, 2]);
        let violations = CpuOracle::new().flag(&o);
        assert!(violations
            .iter()
            .any(|v| v.heuristic == HeuristicKind::IdleCoreAboveCeiling));
        assert!(violations
            .iter()
            .any(|v| v.heuristic == HeuristicKind::TotalAboveExpected));
    }

    #[test]
    fn score_is_total_utilization() {
        let o = obs(&[0.5, 0.5], &[0]);
        let s = CpuOracle::new().score(&o);
        assert!((s - 50.0).abs() < 0.5);
    }

    #[test]
    fn top_frame_feeds_sysproc_heuristic() {
        use torpedo_kernel::top::{TopEntry, TopSample};
        let mut o = obs(
            &[
                0.85, 0.2, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04, 0.04,
            ],
            &[0],
        );
        o.top = Some(TopSample {
            entries: vec![TopEntry {
                pid: 3,
                name: "kauditd".into(),
                category: TopCategory::Kauditd,
                cpu_percent: 22.0,
            }],
        });
        let violations = CpuOracle::new().flag(&o);
        assert!(violations
            .iter()
            .any(|v| v.heuristic == HeuristicKind::SystemProcessAboveBaseline));
    }
}
