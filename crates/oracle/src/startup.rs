//! The startup-time oracle — the §5.1 future-work metric.
//!
//! "Another extremely relevant metric for container systems is startup
//! time, which could be monitored while workloads are running to search
//! for correlation. How to adequately design an oracle to measure this
//! metric while taking into account known phenomena like cold start remains
//! a task for the future." This implementation takes the obvious design:
//! maintain an exponential moving baseline of warm startup times, exempt
//! the first (cold-start) samples, and flag when a warm startup exceeds the
//! baseline by a configurable factor.

use torpedo_kernel::time::Usecs;

use crate::observation::Observation;
use crate::violation::{HeuristicKind, Violation};
use crate::Oracle;

/// Configuration for the startup oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct StartupConfig {
    /// Samples treated as cold starts and excluded from the baseline.
    pub cold_start_samples: usize,
    /// A warm startup above `baseline * degradation_factor` flags.
    pub degradation_factor: f64,
    /// Exponential-moving-average weight for new samples.
    pub ema_alpha: f64,
}

impl Default for StartupConfig {
    fn default() -> Self {
        StartupConfig {
            cold_start_samples: 2,
            degradation_factor: 2.0,
            ema_alpha: 0.25,
        }
    }
}

/// The startup-time oracle. Stateful: it accumulates a baseline across
/// rounds, so one instance should live for a whole campaign.
#[derive(Debug, Clone, Default)]
pub struct StartupOracle {
    config: StartupConfig,
    baseline_us: Option<f64>,
    samples_seen: usize,
    last_violations: Vec<Violation>,
}

impl StartupOracle {
    /// An oracle with default configuration.
    pub fn new() -> StartupOracle {
        StartupOracle::default()
    }

    /// An oracle with custom configuration.
    pub fn with_config(config: StartupConfig) -> StartupOracle {
        StartupOracle {
            config,
            ..StartupOracle::default()
        }
    }

    /// Feed startup samples (mutates the baseline); returns violations for
    /// the degraded warm samples.
    pub fn ingest(&mut self, samples: &[Usecs]) -> Vec<Violation> {
        let mut violations = Vec::new();
        for sample in samples {
            let us = sample.as_micros() as f64;
            self.samples_seen += 1;
            if self.samples_seen <= self.config.cold_start_samples {
                // Cold starts seed the baseline but never flag.
                self.baseline_us = Some(match self.baseline_us {
                    Some(b) => b.min(us),
                    None => us,
                });
                continue;
            }
            let baseline = self.baseline_us.get_or_insert(us);
            if us > *baseline * self.config.degradation_factor {
                violations.push(Violation {
                    heuristic: HeuristicKind::StartupDegraded,
                    core: None,
                    measured: us / 1000.0,
                    threshold: *baseline * self.config.degradation_factor / 1000.0,
                });
            } else {
                // Healthy warm sample: fold into the baseline.
                *baseline = *baseline * (1.0 - self.config.ema_alpha) + us * self.config.ema_alpha;
            }
        }
        self.last_violations = violations.clone();
        violations
    }

    /// The current warm baseline, if established.
    pub fn baseline(&self) -> Option<Usecs> {
        self.baseline_us.map(|us| Usecs(us as u64))
    }
}

impl Oracle for StartupOracle {
    fn name(&self) -> &'static str {
        "startup"
    }

    /// Score: the worst startup this round relative to baseline (1.0 =
    /// nominal). Higher is more adversarial.
    fn score(&self, obs: &Observation) -> f64 {
        let Some(baseline) = self.baseline_us else {
            return 0.0;
        };
        obs.startup_times
            .iter()
            .map(|s| s.as_micros() as f64 / baseline)
            .fold(0.0, f64::max)
    }

    fn flag(&self, obs: &Observation) -> Vec<Violation> {
        // The immutable trait path can only judge against the established
        // baseline; campaigns use `ingest` to also update it.
        let Some(baseline) = self.baseline_us else {
            return Vec::new();
        };
        obs.startup_times
            .iter()
            .filter(|s| s.as_micros() as f64 > baseline * self.config.degradation_factor)
            .map(|s| Violation {
                heuristic: HeuristicKind::StartupDegraded,
                core: None,
                measured: s.as_micros() as f64 / 1000.0,
                threshold: baseline * self.config.degradation_factor / 1000.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_starts_never_flag() {
        let mut oracle = StartupOracle::new();
        // First samples are slow (cold) but exempt.
        let v = oracle.ingest(&[Usecs::from_millis(900), Usecs::from_millis(850)]);
        assert!(v.is_empty());
        assert!(oracle.baseline().is_some());
    }

    #[test]
    fn warm_degradation_flags() {
        let mut oracle = StartupOracle::new();
        oracle.ingest(&[Usecs::from_millis(400), Usecs::from_millis(300)]);
        // Warm samples near baseline: fine.
        assert!(oracle.ingest(&[Usecs::from_millis(320)]).is_empty());
        // A 3x degradation: flagged.
        let v = oracle.ingest(&[Usecs::from_millis(950)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].heuristic, HeuristicKind::StartupDegraded);
    }

    #[test]
    fn baseline_tracks_healthy_samples() {
        let mut oracle = StartupOracle::new();
        oracle.ingest(&[Usecs::from_millis(400), Usecs::from_millis(400)]);
        for _ in 0..20 {
            oracle.ingest(&[Usecs::from_millis(200)]);
        }
        let baseline = oracle.baseline().unwrap();
        assert!(
            baseline < Usecs::from_millis(260),
            "baseline {baseline} did not converge down"
        );
    }

    #[test]
    fn trait_flag_uses_observation_samples() {
        let mut oracle = StartupOracle::new();
        oracle.ingest(&[Usecs::from_millis(300), Usecs::from_millis(300)]);
        let obs = Observation {
            window: Usecs::from_secs(5),
            per_core: Vec::new(),
            top: None,
            containers: Vec::new(),
            sidecar_core: None,
            startup_times: vec![Usecs::from_millis(2000)],
        };
        let v = oracle.flag(&obs);
        assert_eq!(v.len(), 1);
        assert!(oracle.score(&obs) > 2.0);
    }
}
