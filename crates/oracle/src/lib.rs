//! `torpedo-oracle`: the Oracle library (§3.5.1).
//!
//! "We conceive of a library, known as an 'Oracle', that contains the
//! necessary logic for both of these tasks with respect to a particular
//! resource": **scoring** a round's observation (higher = more indicative
//! of adversarial behaviour, used to steer mutation) and **flagging** it
//! (the oracle believes one or more resource isolation boundaries were
//! violated).
//!
//! [`cpu::CpuOracle`] implements the Table 4.1 heuristics the evaluation
//! ran with; [`io::IoOracle`], [`memory::MemOracle`], [`net::NetOracle`]
//! and [`startup::StartupOracle`] implement the §5.1 future-work oracles.
//!
//! # Examples
//! ```
//! use torpedo_oracle::{CpuOracle, Oracle};
//! # use torpedo_kernel::{Usecs};
//! # use torpedo_oracle::observation::Observation;
//! let oracle = CpuOracle::new();
//! let obs = Observation {
//!     window: Usecs::from_secs(5),
//!     per_core: Vec::new(),
//!     top: None,
//!     containers: Vec::new(),
//!     sidecar_core: None,
//!     startup_times: Vec::new(),
//! };
//! assert_eq!(oracle.score(&obs), 0.0);
//! assert!(oracle.flag(&obs).is_empty());
//! ```

pub mod cpu;
pub mod io;
pub mod memory;
pub mod net;
pub mod observation;
pub mod startup;
pub mod violation;

pub use cpu::{CpuOracle, CpuThresholds};
pub use io::{IoOracle, IoThresholds};
pub use memory::{MemOracle, MemThresholds};
pub use net::{NetOracle, NetThresholds};
pub use observation::{ContainerInfo, Observation};
pub use startup::{StartupConfig, StartupOracle};
pub use violation::{violation_kinds, HeuristicKind, Violation};

/// A resource oracle: scores and flags round observations (§3.5.1).
pub trait Oracle: std::fmt::Debug {
    /// Short name of the resource this oracle watches.
    fn name(&self) -> &'static str;

    /// Rank the observation: a higher score indicates the workload is more
    /// indicative of adversarial behaviour.
    fn score(&self, obs: &observation::Observation) -> f64;

    /// Flag isolation-boundary violations in the observation.
    fn flag(&self, obs: &observation::Observation) -> Vec<violation::Violation>;
}
