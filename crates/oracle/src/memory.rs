//! The memory oracle — a §5.1 future-work oracle.
//!
//! Watches the memory controller's per-container charges against the
//! configured limits: flags when a container rides its limit (thrash/OOM
//! pressure) or when the fleet's combined usage exceeds what the limits
//! should permit (an accounting escape).

use crate::observation::Observation;
use crate::violation::{HeuristicKind, Violation};
use crate::Oracle;

/// Thresholds for the memory oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct MemThresholds {
    /// Fraction of its limit a container may use before being considered
    /// under pressure.
    pub pressure_fraction: f64,
}

impl Default for MemThresholds {
    fn default() -> Self {
        MemThresholds {
            pressure_fraction: 0.95,
        }
    }
}

/// The memory oracle.
#[derive(Debug, Clone, Default)]
pub struct MemOracle {
    thresholds: MemThresholds,
}

impl MemOracle {
    /// An oracle with default thresholds.
    pub fn new() -> MemOracle {
        MemOracle::default()
    }

    /// An oracle with custom thresholds.
    pub fn with_thresholds(thresholds: MemThresholds) -> MemOracle {
        MemOracle { thresholds }
    }
}

impl Oracle for MemOracle {
    fn name(&self) -> &'static str {
        "memory"
    }

    /// Score: total container memory in MiB — growth under mutation means
    /// the program is finding ways to make the host hold more memory.
    fn score(&self, obs: &Observation) -> f64 {
        obs.containers
            .iter()
            .map(|c| c.memory_used as f64 / (1 << 20) as f64)
            .sum()
    }

    fn flag(&self, obs: &Observation) -> Vec<Violation> {
        let mut violations = Vec::new();
        for container in &obs.containers {
            // OOM-kill events are an unambiguous signal regardless of the
            // current charge level (the workload keeps slamming the limit).
            if container.oom_events > 0 {
                violations.push(Violation {
                    heuristic: HeuristicKind::MemoryBeyondLimits,
                    core: None,
                    measured: container.oom_events as f64,
                    threshold: 0.0,
                });
            }
            let Some(limit) = container.memory_limit else {
                continue;
            };
            if limit == 0 {
                continue;
            }
            let fraction = container.memory_used as f64 / limit as f64;
            if fraction > self.thresholds.pressure_fraction {
                violations.push(Violation {
                    heuristic: HeuristicKind::MemoryBeyondLimits,
                    core: None,
                    measured: fraction * 100.0,
                    threshold: self.thresholds.pressure_fraction * 100.0,
                });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ContainerInfo;
    use torpedo_kernel::time::Usecs;

    fn obs(used: u64, limit: Option<u64>) -> Observation {
        Observation {
            window: Usecs::from_secs(5),
            per_core: Vec::new(),
            top: None,
            containers: vec![ContainerInfo {
                name: "fuzz-0".into(),
                cpuset: vec![0],
                cpu_quota: Some(1.0),
                memory_limit: limit,
                memory_used: used,
                io_bytes: 0,
                oom_events: 0,
            }],
            sidecar_core: None,
            startup_times: Vec::new(),
        }
    }

    #[test]
    fn oom_events_flag_regardless_of_current_charge() {
        let mut o = obs(0, Some(1 << 30));
        o.containers[0].oom_events = 3;
        let violations = MemOracle::new().flag(&o);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].measured, 3.0);
    }

    #[test]
    fn under_limit_is_quiet() {
        let o = obs(500 << 20, Some(1 << 30));
        assert!(MemOracle::new().flag(&o).is_empty());
    }

    #[test]
    fn riding_the_limit_flags() {
        let o = obs((1 << 30) - (1 << 20), Some(1 << 30));
        let violations = MemOracle::new().flag(&o);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].heuristic, HeuristicKind::MemoryBeyondLimits);
    }

    #[test]
    fn unlimited_containers_never_flag() {
        let o = obs(100 << 30, None);
        assert!(MemOracle::new().flag(&o).is_empty());
    }

    #[test]
    fn score_in_mib() {
        let o = obs(256 << 20, Some(1 << 30));
        assert!((MemOracle::new().score(&o) - 256.0).abs() < 0.01);
    }
}
