//! The measurement an oracle judges: one round's resource snapshot.
//!
//! Oracles see exactly what the real TORPEDO observer sees (§3.4): the
//! `/proc/stat` per-core diff and the filtered `top` frame — never the
//! kernel's ground-truth deferral ledger (that is reserved for the offline
//! confirmation stage).

use torpedo_kernel::cpu::CpuTimes;
use torpedo_kernel::time::Usecs;
use torpedo_kernel::top::TopSample;

/// Per-container configuration the oracle may assume known (TORPEDO set the
/// restrictions itself when deploying the containers, §3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerInfo {
    /// Container name.
    pub name: String,
    /// Core(s) the container is pinned to.
    pub cpuset: Vec<usize>,
    /// Configured CPU cap in cores, if any.
    pub cpu_quota: Option<f64>,
    /// Configured memory limit, if any.
    pub memory_limit: Option<u64>,
    /// Memory charged to the container this round.
    pub memory_used: u64,
    /// Block-I/O bytes charged this round.
    pub io_bytes: u64,
    /// Lifetime OOM events recorded by the memory controller.
    pub oom_events: u64,
}

/// One round's observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Round window length.
    pub window: Usecs,
    /// Per-core `/proc/stat` deltas for the round.
    pub per_core: Vec<CpuTimes>,
    /// The `top` frame, if the sampler was past warm-up.
    pub top: Option<TopSample>,
    /// Containers under observation.
    pub containers: Vec<ContainerInfo>,
    /// The known framework side-effect core (persistent SOFTIRQ on the core
    /// after the last fuzzing core) — heuristics must ignore it, per the
    /// Appendix A note.
    pub sidecar_core: Option<usize>,
    /// Container startup times measured this round (for the startup oracle).
    pub startup_times: Vec<Usecs>,
}

impl Observation {
    /// Cores hosting fuzzing containers.
    pub fn fuzz_cores(&self) -> Vec<usize> {
        let mut cores: Vec<usize> = self
            .containers
            .iter()
            .flat_map(|c| c.cpuset.iter().copied())
            .collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Cores that are neither fuzzing cores nor the sidecar.
    pub fn idle_cores(&self) -> Vec<usize> {
        let fuzz = self.fuzz_cores();
        (0..self.per_core.len())
            .filter(|c| !fuzz.contains(c) && Some(*c) != self.sidecar_core)
            .collect()
    }

    /// Busy percentage of one core.
    pub fn busy_percent(&self, core: usize) -> f64 {
        self.per_core
            .get(core)
            .map_or(0.0, |row| row.busy_percent())
    }

    /// Machine-wide busy percentage (the paper's aggregate `CPU` row).
    pub fn total_busy_percent(&self) -> f64 {
        if self.per_core.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.per_core.iter().map(|c| c.busy().as_micros()).sum();
        let total: u64 = self.per_core.iter().map(|c| c.total().as_micros()).sum();
        if total == 0 {
            0.0
        } else {
            100.0 * busy as f64 / total as f64
        }
    }

    /// The machine-wide busy percentage *expected* from the configured
    /// quotas plus a noise margin: quota cores fully used, everything else
    /// near idle.
    pub fn expected_total_percent(&self, noise_margin: f64) -> f64 {
        let quota_cores: f64 = self
            .containers
            .iter()
            .map(|c| c.cpu_quota.unwrap_or(c.cpuset.len().max(1) as f64))
            .sum();
        let cores = self.per_core.len().max(1) as f64;
        (100.0 * quota_cores / cores) + noise_margin
    }

    /// Machine-wide I/O-wait percentage.
    pub fn total_iowait_percent(&self) -> f64 {
        if self.per_core.is_empty() {
            return 0.0;
        }
        let iowait: u64 = self.per_core.iter().map(|c| c.iowait.as_micros()).sum();
        let total: u64 = self.per_core.iter().map(|c| c.total().as_micros()).sum();
        if total == 0 {
            0.0
        } else {
            100.0 * iowait as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::cpu::CpuCategory;

    pub(crate) fn obs_with(busy_ratio: &[f64]) -> Observation {
        let window = Usecs::from_secs(5);
        let per_core = busy_ratio
            .iter()
            .map(|r| {
                let mut t = CpuTimes::default();
                let busy = window.scale(*r);
                t.charge(CpuCategory::System, busy);
                t.charge(CpuCategory::Idle, window.saturating_sub(busy));
                t
            })
            .collect();
        Observation {
            window,
            per_core,
            top: None,
            containers: vec![ContainerInfo {
                name: "fuzz-0".into(),
                cpuset: vec![0],
                cpu_quota: Some(1.0),
                memory_limit: None,
                memory_used: 0,
                io_bytes: 0,
                oom_events: 0,
            }],
            sidecar_core: Some(1),
            startup_times: Vec::new(),
        }
    }

    #[test]
    fn core_partitioning() {
        let obs = obs_with(&[0.9, 0.2, 0.05, 0.05]);
        assert_eq!(obs.fuzz_cores(), vec![0]);
        assert_eq!(obs.idle_cores(), vec![2, 3]);
    }

    #[test]
    fn busy_percentages() {
        let obs = obs_with(&[0.5, 0.5]);
        assert!((obs.busy_percent(0) - 50.0).abs() < 0.1);
        assert!((obs.total_busy_percent() - 50.0).abs() < 0.1);
        assert_eq!(obs.busy_percent(99), 0.0);
    }

    #[test]
    fn expected_total_uses_quotas() {
        let obs = obs_with(&[0.9, 0.0, 0.0, 0.0]);
        // 1 quota core of 4 cores = 25% + 5 margin.
        assert!((obs.expected_total_percent(5.0) - 30.0).abs() < 0.1);
    }

    #[test]
    fn iowait_percent_zero_without_iowait() {
        let obs = obs_with(&[0.9, 0.1]);
        assert_eq!(obs.total_iowait_percent(), 0.0);
    }
}
