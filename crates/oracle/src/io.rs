//! The I/O-bandwidth oracle — the first of the §5.1 future-work oracles.
//!
//! Detects the `sync(2)` family of escapes directly: I/O-wait appearing on
//! cores *outside* the fuzzing cpuset means processes unrelated to the
//! fuzzed containers are stalled on the disk, while the `blkio` controller
//! shows the containers were never charged for the traffic (the §4.3.1
//! accounting gap).

use crate::observation::Observation;
use crate::violation::{HeuristicKind, Violation};
use crate::Oracle;

/// Thresholds for the I/O oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct IoThresholds {
    /// Maximum tolerated I/O-wait percentage on any non-fuzzing core.
    pub foreign_iowait_max: f64,
    /// Maximum tolerated machine-wide I/O-wait percentage.
    pub total_iowait_max: f64,
}

impl Default for IoThresholds {
    fn default() -> Self {
        IoThresholds {
            foreign_iowait_max: 8.0,
            total_iowait_max: 3.0,
        }
    }
}

/// The I/O oracle.
#[derive(Debug, Clone, Default)]
pub struct IoOracle {
    thresholds: IoThresholds,
}

impl IoOracle {
    /// An oracle with default thresholds.
    pub fn new() -> IoOracle {
        IoOracle::default()
    }

    /// An oracle with custom thresholds.
    pub fn with_thresholds(thresholds: IoThresholds) -> IoOracle {
        IoOracle { thresholds }
    }
}

impl Oracle for IoOracle {
    fn name(&self) -> &'static str {
        "io"
    }

    /// Score: machine-wide I/O-wait percentage — more stalled disk time is
    /// more indicative of flush-deferral behaviour.
    fn score(&self, obs: &Observation) -> f64 {
        obs.total_iowait_percent()
    }

    fn flag(&self, obs: &Observation) -> Vec<Violation> {
        let mut violations = Vec::new();
        let fuzz = obs.fuzz_cores();
        for core in 0..obs.per_core.len() {
            if fuzz.contains(&core) || Some(core) == obs.sidecar_core {
                continue;
            }
            let row = &obs.per_core[core];
            let total = row.total().as_micros().max(1);
            let iowait_pct = 100.0 * row.iowait.as_micros() as f64 / total as f64;
            if iowait_pct > self.thresholds.foreign_iowait_max {
                violations.push(Violation {
                    heuristic: HeuristicKind::IoWaitOutsideCpuset,
                    core: Some(core),
                    measured: iowait_pct,
                    threshold: self.thresholds.foreign_iowait_max,
                });
            }
        }
        let total = obs.total_iowait_percent();
        if total > self.thresholds.total_iowait_max {
            violations.push(Violation {
                heuristic: HeuristicKind::IoWaitOutsideCpuset,
                core: None,
                measured: total,
                threshold: self.thresholds.total_iowait_max,
            });
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ContainerInfo;
    use torpedo_kernel::cpu::{CpuCategory, CpuTimes};
    use torpedo_kernel::time::Usecs;

    fn obs(iowait_frac: &[f64]) -> Observation {
        let window = Usecs::from_secs(5);
        let per_core = iowait_frac
            .iter()
            .map(|r| {
                let mut t = CpuTimes::default();
                let wait = window.scale(*r);
                t.charge(CpuCategory::IoWait, wait);
                t.charge(CpuCategory::Idle, window.saturating_sub(wait));
                t
            })
            .collect();
        Observation {
            window,
            per_core,
            top: None,
            containers: vec![ContainerInfo {
                name: "fuzz-0".into(),
                cpuset: vec![0],
                cpu_quota: Some(1.0),
                memory_limit: None,
                memory_used: 0,
                io_bytes: 0,
                oom_events: 0,
            }],
            sidecar_core: Some(1),
            startup_times: Vec::new(),
        }
    }

    #[test]
    fn quiet_disk_no_violations() {
        let o = obs(&[0.01, 0.0, 0.005, 0.0]);
        assert!(IoOracle::new().flag(&o).is_empty());
    }

    #[test]
    fn sync_pattern_flags_foreign_iowait() {
        // Table A.2 shape: heavy iowait on cores 6 and 7.
        let o = obs(&[0.05, 0.0, 0.0, 0.0, 0.0, 0.0, 0.10, 0.33]);
        let violations = IoOracle::new().flag(&o);
        assert!(violations
            .iter()
            .any(|v| v.core == Some(7) && v.heuristic == HeuristicKind::IoWaitOutsideCpuset));
        assert!(
            violations.iter().any(|v| v.core.is_none()),
            "total fires too"
        );
    }

    #[test]
    fn fuzz_core_iowait_does_not_flag_core_heuristic() {
        let o = obs(&[0.30, 0.0, 0.0, 0.0]);
        let violations = IoOracle::new().flag(&o);
        assert!(!violations.iter().any(|v| v.core == Some(0)));
    }

    #[test]
    fn score_tracks_total_iowait() {
        let o = obs(&[0.2, 0.2]);
        assert!((IoOracle::new().score(&o) - 20.0).abs() < 0.5);
    }
}
