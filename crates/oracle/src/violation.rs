//! Violations: the structured output of an oracle's flagging function.

/// Which heuristic fired (superset of Table 4.1, covering the future-work
/// oracles of §5.1 as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// A fuzzing core's utilization fell below its expected floor.
    FuzzCoreBelowFloor,
    /// A non-fuzzing, non-sidecar core rose above the idle ceiling.
    IdleCoreAboveCeiling,
    /// Machine-wide utilization exceeded the quota-derived expectation.
    TotalAboveExpected,
    /// A tracked system process (docker/kworker/kauditd/journald) consumed
    /// more CPU than its baseline allowance.
    SystemProcessAboveBaseline,
    /// I/O-wait concentrated outside the fuzzing cpuset.
    IoWaitOutsideCpuset,
    /// Host memory consumption beyond the sum of container limits.
    MemoryBeyondLimits,
    /// Container startup time degraded beyond the cold-start allowance.
    StartupDegraded,
    /// Soft-IRQ servicing concentrated outside the fuzzing cpuset (net
    /// rx/tx completion amplification past the NAPI budget).
    SoftirqOutsideCpuset,
}

impl HeuristicKind {
    /// Every kind, in discriminant order.
    pub const ALL: [HeuristicKind; 8] = [
        HeuristicKind::FuzzCoreBelowFloor,
        HeuristicKind::IdleCoreAboveCeiling,
        HeuristicKind::TotalAboveExpected,
        HeuristicKind::SystemProcessAboveBaseline,
        HeuristicKind::IoWaitOutsideCpuset,
        HeuristicKind::MemoryBeyondLimits,
        HeuristicKind::StartupDegraded,
        HeuristicKind::SoftirqOutsideCpuset,
    ];

    /// Stable wire name, used by the forensics bundle schema.
    pub fn as_str(self) -> &'static str {
        match self {
            HeuristicKind::FuzzCoreBelowFloor => "fuzz-core-below-floor",
            HeuristicKind::IdleCoreAboveCeiling => "idle-core-above-ceiling",
            HeuristicKind::TotalAboveExpected => "total-above-expected",
            HeuristicKind::SystemProcessAboveBaseline => "system-process-above-baseline",
            HeuristicKind::IoWaitOutsideCpuset => "io-wait-outside-cpuset",
            HeuristicKind::MemoryBeyondLimits => "memory-beyond-limits",
            HeuristicKind::StartupDegraded => "startup-degraded",
            HeuristicKind::SoftirqOutsideCpuset => "softirq-outside-cpuset",
        }
    }

    /// Parse a wire name produced by [`HeuristicKind::as_str`].
    pub fn parse(name: &str) -> Option<HeuristicKind> {
        HeuristicKind::ALL.into_iter().find(|k| k.as_str() == name)
    }

    /// Human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            HeuristicKind::FuzzCoreBelowFloor => "fuzzing core CPU utilization below threshold",
            HeuristicKind::IdleCoreAboveCeiling => "idle core CPU utilization above threshold",
            HeuristicKind::TotalAboveExpected => "total CPU utilization above threshold",
            HeuristicKind::SystemProcessAboveBaseline => {
                "system process CPU utilization above threshold"
            }
            HeuristicKind::IoWaitOutsideCpuset => "I/O wait outside fuzzing cpuset",
            HeuristicKind::MemoryBeyondLimits => "memory consumption beyond container limits",
            HeuristicKind::StartupDegraded => "container startup time degraded",
            HeuristicKind::SoftirqOutsideCpuset => "softirq processing outside fuzzing cpuset",
        }
    }
}

/// One heuristic violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which heuristic fired.
    pub heuristic: HeuristicKind,
    /// The core involved, if core-specific.
    pub core: Option<usize>,
    /// The measured value (percent or ratio, heuristic-specific).
    pub measured: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.core {
            Some(core) => write!(
                f,
                "{} (core {}): measured {:.1} vs threshold {:.1}",
                self.heuristic.describe(),
                core,
                self.measured,
                self.threshold
            ),
            None => write!(
                f,
                "{}: measured {:.1} vs threshold {:.1}",
                self.heuristic.describe(),
                self.measured,
                self.threshold
            ),
        }
    }
}

/// The set of heuristic kinds present in a violation list, order-insensitive
/// — Algorithm 3 minimizes while the *kinds* of violations stay equal.
pub fn violation_kinds(violations: &[Violation]) -> Vec<HeuristicKind> {
    let mut kinds: Vec<HeuristicKind> = violations.iter().map(|v| v.heuristic).collect();
    kinds.sort_by_key(|k| *k as u8);
    kinds.dedup();
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_core_when_present() {
        let v = Violation {
            heuristic: HeuristicKind::IdleCoreAboveCeiling,
            core: Some(7),
            measured: 37.4,
            threshold: 15.0,
        };
        let s = v.to_string();
        assert!(s.contains("core 7"));
        assert!(s.contains("37.4"));
    }

    #[test]
    fn kinds_dedup_and_sort() {
        let vs = vec![
            Violation {
                heuristic: HeuristicKind::TotalAboveExpected,
                core: None,
                measured: 0.0,
                threshold: 0.0,
            },
            Violation {
                heuristic: HeuristicKind::IdleCoreAboveCeiling,
                core: Some(4),
                measured: 0.0,
                threshold: 0.0,
            },
            Violation {
                heuristic: HeuristicKind::IdleCoreAboveCeiling,
                core: Some(5),
                measured: 0.0,
                threshold: 0.0,
            },
        ];
        let kinds = violation_kinds(&vs);
        assert_eq!(
            kinds,
            vec![
                HeuristicKind::IdleCoreAboveCeiling,
                HeuristicKind::TotalAboveExpected
            ]
        );
    }

    #[test]
    fn descriptions_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in HeuristicKind::ALL {
            assert!(seen.insert(k.describe()));
        }
    }

    #[test]
    fn wire_names_round_trip_for_all_kinds() {
        for k in HeuristicKind::ALL {
            assert_eq!(HeuristicKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(HeuristicKind::parse("idle-core-on-fire"), None);
    }
}
