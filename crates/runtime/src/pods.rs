//! A minimal Kubernetes-style orchestration layer (§5.2).
//!
//! "Adapting TORPEDO to use a different container engine than Docker would
//! be highly desirable. Kubernetes commanded an impressive 77% of the
//! container orchestration market in 2019 … Kubernetes can be configured to
//! use practically any of the OCI runtimes that we have fuzzed via the
//! Docker engine." This module provides that adaptation surface: pods group
//! containers (§2.3.3), a kubelet deploys them through the existing
//! [`Engine`] and OCI runtime registry, applies the restart policy, and
//! reports status — so a fuzzing campaign can target pods instead of bare
//! containers with no changes below the engine.

use torpedo_kernel::kernel::Kernel;

use crate::engine::{ContainerId, ContainerState, Engine, EngineError};
use crate::spec::ContainerSpec;

/// Pod-level restart policy (the Kubernetes `restartPolicy` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Restart crashed containers on every sync (Kubernetes default).
    #[default]
    Always,
    /// Never restart; the pod degrades to `Failed`.
    Never,
}

/// A pod specification: one or more containers scheduled together.
#[derive(Debug, Clone)]
pub struct PodSpec {
    /// Pod name; container names are derived as `<pod>-<container>`.
    pub name: String,
    /// Container templates.
    pub containers: Vec<ContainerSpec>,
    /// Restart policy.
    pub restart_policy: RestartPolicy,
}

impl PodSpec {
    /// A pod with the given name and no containers yet.
    pub fn new(name: &str) -> PodSpec {
        PodSpec {
            name: name.to_string(),
            containers: Vec::new(),
            restart_policy: RestartPolicy::Always,
        }
    }

    /// Add a container template.
    #[must_use]
    pub fn container(mut self, spec: ContainerSpec) -> PodSpec {
        self.containers.push(spec);
        self
    }

    /// Set the restart policy.
    #[must_use]
    pub fn restart_policy(mut self, policy: RestartPolicy) -> PodSpec {
        self.restart_policy = policy;
        self
    }
}

/// Aggregate pod phase (the Kubernetes `status.phase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// All containers running.
    Running,
    /// At least one container crashed and the policy is `Never`.
    Failed,
}

/// A deployed pod.
#[derive(Debug)]
pub struct Pod {
    spec: PodSpec,
    containers: Vec<ContainerId>,
    restarts: u32,
}

impl Pod {
    /// The pod's spec.
    pub fn spec(&self) -> &PodSpec {
        &self.spec
    }

    /// Deployed container ids, in spec order.
    pub fn containers(&self) -> &[ContainerId] {
        &self.containers
    }

    /// Containers restarted by the kubelet so far (the Kubernetes
    /// `restartCount`).
    pub fn restarts(&self) -> u32 {
        self.restarts
    }
}

/// The node agent: deploys pods through the engine and enforces restart
/// policies — the piece §5.4 calls an "interesting component" to fuzz.
#[derive(Debug, Default)]
pub struct Kubelet {
    pods: Vec<Pod>,
}

impl Kubelet {
    /// An empty kubelet.
    pub fn new() -> Kubelet {
        Kubelet::default()
    }

    /// Deploy a pod: every container is created through `engine` with the
    /// pod name prefixed (so specs can be reused across replicas).
    ///
    /// # Errors
    /// Engine errors; on failure, containers created so far are removed
    /// (pods are atomic units).
    pub fn deploy(
        &mut self,
        kernel: &mut Kernel,
        engine: &mut Engine,
        spec: PodSpec,
    ) -> Result<usize, EngineError> {
        let mut created: Vec<ContainerId> = Vec::new();
        for template in &spec.containers {
            let mut spec_named = template.clone();
            spec_named.name = format!("{}-{}", spec.name, template.name);
            match engine.create(kernel, spec_named) {
                Ok(id) => created.push(id),
                Err(e) => {
                    for id in &created {
                        let _ = engine.remove(kernel, id);
                    }
                    return Err(e);
                }
            }
        }
        self.pods.push(Pod {
            spec,
            containers: created,
            restarts: 0,
        });
        Ok(self.pods.len() - 1)
    }

    /// The deployed pods.
    pub fn pods(&self) -> &[Pod] {
        &self.pods
    }

    /// Phase of pod `index`.
    pub fn phase(&self, engine: &Engine, index: usize) -> Option<PodPhase> {
        let pod = self.pods.get(index)?;
        let any_crashed = pod.containers.iter().any(|id| {
            engine
                .container(id)
                .is_some_and(|c| matches!(c.state(), ContainerState::Crashed(_)))
        });
        Some(
            if any_crashed && pod.spec.restart_policy == RestartPolicy::Never {
                PodPhase::Failed
            } else {
                PodPhase::Running
            },
        )
    }

    /// One control-loop pass: restart crashed containers per policy.
    /// Returns the number of restarts performed.
    ///
    /// # Errors
    /// Engine restart failures.
    pub fn sync(&mut self, kernel: &mut Kernel, engine: &mut Engine) -> Result<u32, EngineError> {
        let mut performed = 0;
        for pod in &mut self.pods {
            if pod.spec.restart_policy != RestartPolicy::Always {
                continue;
            }
            for id in &pod.containers {
                let crashed = engine
                    .container(id)
                    .is_some_and(|c| matches!(c.state(), ContainerState::Crashed(_)));
                if crashed {
                    engine.restart(kernel, id)?;
                    pod.restarts += 1;
                    performed += 1;
                }
            }
        }
        Ok(performed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::{SyscallRequest, Usecs};

    fn setup() -> (Kernel, Engine, Kubelet) {
        let mut kernel = Kernel::with_defaults();
        let engine = Engine::new(&mut kernel);
        (kernel, engine, Kubelet::new())
    }

    fn fuzz_pod(runtime: &str) -> PodSpec {
        PodSpec::new("fuzzer")
            .container(
                ContainerSpec::new("exec")
                    .runtime_name(runtime)
                    .cpuset_cpus(&[0]),
            )
            .container(
                ContainerSpec::new("sidecar")
                    .runtime_name(runtime)
                    .cpuset_cpus(&[1]),
            )
    }

    #[test]
    fn deploy_names_containers_by_pod() {
        let (mut kernel, mut engine, mut kubelet) = setup();
        let idx = kubelet
            .deploy(&mut kernel, &mut engine, fuzz_pod("runc"))
            .unwrap();
        let pod = &kubelet.pods()[idx];
        assert_eq!(pod.containers().len(), 2);
        assert_eq!(pod.containers()[0].name(), "fuzzer-exec");
        assert_eq!(pod.containers()[1].name(), "fuzzer-sidecar");
        assert_eq!(kubelet.phase(&engine, idx), Some(PodPhase::Running));
    }

    #[test]
    fn failed_deploy_rolls_back_atomically() {
        let (mut kernel, mut engine, mut kubelet) = setup();
        let bad = PodSpec::new("broken")
            .container(ContainerSpec::new("ok"))
            .container(ContainerSpec::new("bad").runtime_name("nonexistent"));
        assert!(kubelet.deploy(&mut kernel, &mut engine, bad).is_err());
        assert!(kubelet.pods().is_empty());
        // The first container must have been cleaned up.
        assert!(engine.container_ids().is_empty());
    }

    #[test]
    fn restart_policy_always_recovers_crashes() {
        let (mut kernel, mut engine, mut kubelet) = setup();
        let idx = kubelet
            .deploy(&mut kernel, &mut engine, fuzz_pod("runsc"))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        let crasher = kubelet.pods()[idx].containers()[0].clone();
        let req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
            .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
        let exec = engine.exec(&mut kernel, &crasher, req).unwrap();
        assert!(exec.crash.is_some());
        assert_eq!(kubelet.sync(&mut kernel, &mut engine).unwrap(), 1);
        assert_eq!(kubelet.pods()[idx].restarts(), 1);
        assert_eq!(kubelet.phase(&engine, idx), Some(PodPhase::Running));
        // Container accepts work again.
        let ok = engine
            .exec(&mut kernel, &crasher, SyscallRequest::new("getpid", [0; 6]))
            .unwrap();
        assert!(ok.crash.is_none());
    }

    #[test]
    fn restart_policy_never_fails_the_pod() {
        let (mut kernel, mut engine, mut kubelet) = setup();
        let spec = fuzz_pod("runsc").restart_policy(RestartPolicy::Never);
        let idx = kubelet.deploy(&mut kernel, &mut engine, spec).unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        let crasher = kubelet.pods()[idx].containers()[0].clone();
        let req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
            .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
        engine.exec(&mut kernel, &crasher, req).unwrap();
        assert_eq!(kubelet.sync(&mut kernel, &mut engine).unwrap(), 0);
        assert_eq!(kubelet.phase(&engine, idx), Some(PodPhase::Failed));
        assert_eq!(kubelet.pods()[idx].restarts(), 0);
    }

    #[test]
    fn pods_work_on_every_registered_runtime() {
        for runtime in ["runc", "crun", "runsc", "kata"] {
            let (mut kernel, mut engine, mut kubelet) = setup();
            let idx = kubelet
                .deploy(&mut kernel, &mut engine, fuzz_pod(runtime))
                .unwrap_or_else(|e| panic!("{runtime}: {e}"));
            kernel.begin_round(Usecs::from_secs(1));
            let id = kubelet.pods()[idx].containers()[0].clone();
            let out = engine
                .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
                .unwrap();
            assert!(out.outcome.retval > 0, "{runtime}");
        }
    }
}
