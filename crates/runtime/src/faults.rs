//! Deterministic fault injection for the engine's I/O callsites.
//!
//! FoundationDB-style simulation testing: every fault decision is a pure
//! function of `(seed, fault kind, scope, per-scope sequence number)`, so a
//! campaign replayed with the same seeds takes *exactly* the same faults —
//! regardless of thread scheduling — and a recovery bug found once can be
//! reproduced forever.
//!
//! The engine holds an `Option<Arc<dyn FaultInjector>>`; production runs
//! leave it `None` and pay nothing. Tests and robustness campaigns install
//! a [`FaultPlan`] built from a [`FaultConfig`] with per-kind rates.
//!
//! # Examples
//! ```
//! use torpedo_runtime::faults::{FaultConfig, FaultInjector, FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(FaultConfig {
//!     seed: 7,
//!     start_fail: 1.0,
//!     ..FaultConfig::default()
//! });
//! assert!(plan.roll(FaultKind::StartFail, "fuzz-0"));
//! assert!(!plan.roll(FaultKind::ContainerCrash, "fuzz-0"));
//! assert_eq!(plan.counters().start_fail, 1);
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

/// The fault classes the engine knows how to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Container creation (or restart) fails before the executor spawns.
    StartFail,
    /// Writing the container's cgroup limits fails during creation.
    CgroupWriteFail,
    /// The container dies mid-window as if under a runtime bug.
    ContainerCrash,
    /// The runtime returns a transient exec error instead of an outcome.
    ExecError,
    /// The executor wedges and misses its ready/report latch deadline.
    ExecutorHang,
    /// A campaign checkpoint write dies mid-rename: the temp file lands
    /// but the atomic rename to the final name never happens, leaving the
    /// previous good checkpoint in place.
    CheckpointWriteFail,
}

impl FaultKind {
    /// All kinds, in a stable order (counter layout, reports).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::StartFail,
        FaultKind::CgroupWriteFail,
        FaultKind::ContainerCrash,
        FaultKind::ExecError,
        FaultKind::ExecutorHang,
        FaultKind::CheckpointWriteFail,
    ];

    /// Stable name used in logs and hashing.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::StartFail => "start-fail",
            FaultKind::CgroupWriteFail => "cgroup-write-fail",
            FaultKind::ContainerCrash => "container-crash",
            FaultKind::ExecError => "exec-error",
            FaultKind::ExecutorHang => "executor-hang",
            FaultKind::CheckpointWriteFail => "checkpoint-write-fail",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            FaultKind::StartFail => 0x51,
            FaultKind::CgroupWriteFail => 0x52,
            FaultKind::ContainerCrash => 0x53,
            FaultKind::ExecError => 0x54,
            FaultKind::ExecutorHang => 0x55,
            FaultKind::CheckpointWriteFail => 0x56,
        }
    }
}

/// Per-kind injection rates plus the seed that fixes the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the decision hash; same seed + same call sequence per
    /// scope ⇒ same faults.
    pub seed: u64,
    /// Probability a container start fails.
    pub start_fail: f64,
    /// Probability the cgroup write during creation fails.
    pub cgroup_write_fail: f64,
    /// Probability an exec crashes the container mid-window.
    pub container_crash: f64,
    /// Probability an exec returns a transient runtime error.
    pub exec_error: f64,
    /// Probability an executor hangs past its latch deadline.
    pub executor_hang: f64,
    /// Probability a due campaign checkpoint write dies mid-rename.
    pub checkpoint_write_fail: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            start_fail: 0.0,
            cgroup_write_fail: 0.0,
            container_crash: 0.0,
            exec_error: 0.0,
            executor_hang: 0.0,
            checkpoint_write_fail: 0.0,
        }
    }
}

impl FaultConfig {
    /// True when every rate is zero — the production configuration.
    pub fn is_noop(&self) -> bool {
        FaultKind::ALL.iter().all(|k| self.rate(*k) <= 0.0)
    }

    /// The configured rate for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::StartFail => self.start_fail,
            FaultKind::CgroupWriteFail => self.cgroup_write_fail,
            FaultKind::ContainerCrash => self.container_crash,
            FaultKind::ExecError => self.exec_error,
            FaultKind::ExecutorHang => self.executor_hang,
            FaultKind::CheckpointWriteFail => self.checkpoint_write_fail,
        }
    }
}

/// Count of faults actually injected, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injected container-start failures.
    pub start_fail: u64,
    /// Injected cgroup-write failures.
    pub cgroup_write_fail: u64,
    /// Injected mid-window container crashes.
    pub container_crash: u64,
    /// Injected transient exec errors.
    pub exec_error: u64,
    /// Injected executor hangs.
    pub executor_hang: u64,
    /// Injected checkpoint-write failures (counted by the campaign
    /// driver's checkpoint ledger, not the engine).
    pub checkpoint_write_fail: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.start_fail
            + self.cgroup_write_fail
            + self.container_crash
            + self.exec_error
            + self.executor_hang
            + self.checkpoint_write_fail
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::StartFail => self.start_fail += 1,
            FaultKind::CgroupWriteFail => self.cgroup_write_fail += 1,
            FaultKind::ContainerCrash => self.container_crash += 1,
            FaultKind::ExecError => self.exec_error += 1,
            FaultKind::ExecutorHang => self.executor_hang += 1,
            FaultKind::CheckpointWriteFail => self.checkpoint_write_fail += 1,
        }
    }
}

/// A source of deterministic fault decisions.
///
/// Implementations must be decided purely by `(kind, scope, call number
/// within that scope)` so concurrent callers on different scopes cannot
/// perturb each other's schedules.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Should the next operation of `kind` in `scope` fail?
    fn roll(&self, kind: FaultKind, scope: &str) -> bool;

    /// Faults injected so far.
    fn counters(&self) -> FaultCounters;
}

/// The standard injector: seeded, per-scope sequenced, thread-safe.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    state: Mutex<PlanState>,
}

#[derive(Debug, Default)]
struct PlanState {
    /// Next sequence number per `(kind, scope)` stream.
    seq: HashMap<(FaultKind, String), u64>,
    injected: FaultCounters,
}

impl FaultPlan {
    /// Build a plan from `config`.
    pub fn new(config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            state: Mutex::new(PlanState::default()),
        }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl FaultInjector for FaultPlan {
    fn roll(&self, kind: FaultKind, scope: &str) -> bool {
        let rate = self.config.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let mut state = self.state.lock().expect("fault plan lock");
        let seq = state
            .seq
            .entry((kind, scope.to_string()))
            .and_modify(|n| *n += 1)
            .or_insert(0);
        let draw = decision_draw(self.config.seed, kind, scope, *seq);
        let hit = draw < rate;
        if hit {
            state.injected.bump(kind);
        }
        hit
    }

    fn counters(&self) -> FaultCounters {
        self.state.lock().expect("fault plan lock").injected
    }
}

/// splitmix64 finalizer — the avalanche step that turns structured inputs
/// into uniform bits.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic checkpoint-write-fault decision, keyed only by the fault
/// seed and the global round number the checkpoint is due at.
///
/// Unlike [`FaultPlan::roll`], this is a *pure* function with no sequence
/// state: a resumed campaign that replays rounds without re-writing their
/// checkpoints still computes the same decisions (and hence the same fault
/// counters) as the uninterrupted run — the property the byte-identical
/// resume contract depends on.
pub fn checkpoint_fault_hit(config: &FaultConfig, round: u64) -> bool {
    let rate = config.rate(FaultKind::CheckpointWriteFail);
    if rate <= 0.0 {
        return false;
    }
    decision_draw(
        config.seed,
        FaultKind::CheckpointWriteFail,
        "checkpoint",
        round,
    ) < rate
}

/// Uniform draw in `[0, 1)` keyed by the full decision identity.
fn decision_draw(seed: u64, kind: FaultKind, scope: &str, seq: u64) -> f64 {
    let mut h = mix(seed ^ 0x9E37_79B9_7F4A_7C15);
    h = mix(h ^ kind.tag());
    for chunk in scope.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word));
    }
    h = mix(h ^ seq.wrapping_add(1));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            start_fail: rate,
            cgroup_write_fail: rate,
            container_crash: rate,
            exec_error: rate,
            executor_hang: rate,
            checkpoint_write_fail: rate,
        })
    }

    #[test]
    fn rate_zero_never_fires_and_counts_nothing() {
        let p = plan(42, 0.0);
        for kind in FaultKind::ALL {
            for _ in 0..64 {
                assert!(!p.roll(kind, "fuzz-0"));
            }
        }
        assert_eq!(p.counters().total(), 0);
    }

    #[test]
    fn rate_one_always_fires() {
        let p = plan(42, 1.0);
        for _ in 0..16 {
            assert!(p.roll(FaultKind::ContainerCrash, "fuzz-1"));
        }
        assert_eq!(p.counters().container_crash, 16);
        assert_eq!(p.counters().total(), 16);
    }

    #[test]
    fn same_seed_same_stream() {
        let a = plan(0xDEAD_BEEF, 0.3);
        let b = plan(0xDEAD_BEEF, 0.3);
        for i in 0..256 {
            let scope = format!("fuzz-{}", i % 3);
            assert_eq!(
                a.roll(FaultKind::ExecError, &scope),
                b.roll(FaultKind::ExecError, &scope),
                "divergence at roll {i}"
            );
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = plan(1, 0.5);
        let b = plan(2, 0.5);
        let same = (0..256)
            .filter(|_| {
                a.roll(FaultKind::StartFail, "fuzz-0") == b.roll(FaultKind::StartFail, "fuzz-0")
            })
            .count();
        assert!(same < 256, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn scopes_are_independent_streams() {
        // Stream for scope B must not depend on how often scope A rolled —
        // this is what makes the schedule immune to thread interleaving.
        let reference = plan(99, 0.4);
        let b_only: Vec<bool> = (0..64)
            .map(|_| reference.roll(FaultKind::ExecutorHang, "fuzz-b"))
            .collect();

        let interleaved = plan(99, 0.4);
        let mut b_seen = Vec::new();
        for i in 0..64 {
            // Arbitrary extra traffic on other scopes between B's rolls.
            for _ in 0..(i % 5) {
                interleaved.roll(FaultKind::ExecutorHang, "fuzz-a");
                interleaved.roll(FaultKind::ExecError, "fuzz-b");
            }
            b_seen.push(interleaved.roll(FaultKind::ExecutorHang, "fuzz-b"));
        }
        assert_eq!(b_only, b_seen);
    }

    #[test]
    fn mid_rate_fires_sometimes() {
        let p = plan(7, 0.5);
        let hits = (0..512)
            .filter(|_| p.roll(FaultKind::ContainerCrash, "fuzz-0"))
            .count();
        assert!(
            hits > 128 && hits < 384,
            "rate 0.5 produced {hits}/512 hits"
        );
        assert_eq!(p.counters().container_crash, hits as u64);
    }

    #[test]
    fn noop_detection() {
        assert!(FaultConfig::default().is_noop());
        assert!(!FaultConfig {
            executor_hang: 0.01,
            ..FaultConfig::default()
        }
        .is_noop());
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "start-fail",
                "cgroup-write-fail",
                "container-crash",
                "exec-error",
                "executor-hang",
                "checkpoint-write-fail"
            ]
        );
    }

    #[test]
    fn checkpoint_fault_is_pure_and_rate_gated() {
        let config = FaultConfig {
            seed: 11,
            checkpoint_write_fail: 0.5,
            ..FaultConfig::default()
        };
        // Stateless: the same round always decides the same way, however
        // often (or in whatever order) it is consulted.
        let first: Vec<bool> = (0..64).map(|r| checkpoint_fault_hit(&config, r)).collect();
        let again: Vec<bool> = (0..64).map(|r| checkpoint_fault_hit(&config, r)).collect();
        assert_eq!(first, again);
        let hits = first.iter().filter(|h| **h).count();
        assert!(hits > 8 && hits < 56, "rate 0.5 produced {hits}/64 hits");
        // Zero rate never fires.
        let off = FaultConfig {
            seed: 11,
            ..FaultConfig::default()
        };
        assert!((0..64).all(|r| !checkpoint_fault_hit(&off, r)));
    }
}
