//! A Docker-like container engine (§2.3.1).
//!
//! The engine owns the runtime registry, creates containers with the
//! Table 3.1 restrictions (cgroup + cpuset + quota), spawns the packaged
//! executor entrypoint into each, applies the seccomp profile at call time,
//! and mediates syscall execution through the selected runtime.
//!
//! It also models the engine's own cost: §3.3 notes that driving containers
//! through the Docker CLI and streaming their output "results in a
//! non-trivial workload being placed on the docker engine" via TTY/LDISC
//! work-queue flushes — charged each round by [`Engine::round_overhead`].
//!
//! Per-container state lives behind per-container lock stripes
//! ([`parking_lot::Mutex`]), so the syscall execution path takes `&self`:
//! parallel executors driving *different* containers never contend on the
//! engine itself (§1.2's "multiple fuzzing processes … without compromising
//! measurement accuracy"). Lifecycle operations (create/restart/remove)
//! keep `&mut self` and access stripes without locking.

use std::collections::HashMap;

use parking_lot::{Mutex, MutexGuard};

use torpedo_kernel::cgroup::{CgroupError, CgroupId, CgroupLimits};
use torpedo_kernel::cpu::CpuCategory;
use torpedo_kernel::deferral::DeferralChannel;
use torpedo_kernel::errno::Errno;
use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::process::{DaemonKind, Pid, ProcessKind};
use torpedo_kernel::syscalls::{
    fallback_signal, nr_of, ExecContext, SyscallOutcome, SyscallRequest,
};
use torpedo_kernel::time::Usecs;
use torpedo_telemetry::{SpanKind, Telemetry};

use std::sync::Arc;

use crate::crun::Crun;
use crate::faults::{FaultCounters, FaultInjector, FaultKind};
use crate::gvisor::GVisor;
use crate::kata::Kata;
use crate::runc::RunC;
use crate::spec::ContainerSpec;
use crate::{ContainerCrash, ExecEnv, Runtime, RuntimeExec};

/// containerd-style metrics for one container (Table 2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerMetrics {
    /// CPU charged to the container's cgroup in the current window.
    pub cpu_charged: Usecs,
    /// Memory currently charged.
    pub memory_used: u64,
    /// Block-I/O bytes charged in the current window.
    pub io_bytes: u64,
    /// Lifetime memory-controller rejections (OOM events).
    pub oom_events: u64,
    /// Times the workload process died and was restarted this round.
    pub workload_restarts: u32,
    /// Lifecycle state.
    pub state: ContainerState,
}

/// Opaque handle to a created container.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContainerId(String);

impl ContainerId {
    /// The container name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// Lifecycle state of a container.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainerState {
    /// Accepting work.
    Running,
    /// Died under a runtime bug.
    Crashed(ContainerCrash),
    /// Stopped by the engine.
    Stopped,
}

/// A created container.
#[derive(Debug)]
pub struct Container {
    spec: ContainerSpec,
    cgroup: CgroupId,
    executor_pid: Pid,
    sentry_pid: Option<Pid>,
    core: usize,
    state: ContainerState,
    namespaces: torpedo_kernel::namespace::NamespaceSet,
    uid_mapping: torpedo_kernel::namespace::UidMapping,
    /// Pre-built execution context — constant between restarts, so the
    /// per-syscall path borrows it instead of rebuilding (the cpuset `Vec`
    /// allocation and runtime-policy lookup used to run once per call).
    ctx: ExecContext,
}

impl Container {
    /// The container's spec.
    pub fn spec(&self) -> &ContainerSpec {
        &self.spec
    }

    /// The container's cgroup.
    pub fn cgroup(&self) -> CgroupId {
        self.cgroup
    }

    /// The executor process inside the container.
    pub fn executor_pid(&self) -> Pid {
        self.executor_pid
    }

    /// The core the executor is pinned to.
    pub fn core(&self) -> usize {
        self.core
    }

    /// Current state.
    pub fn state(&self) -> &ContainerState {
        &self.state
    }

    /// The container's namespace set (§2.2.2): fresh PID/NET/MNT/UTS/IPC
    /// instances, host cgroup namespace (Docker default), and a USER
    /// namespace instance only under `userns-remap`.
    pub fn namespaces(&self) -> &torpedo_kernel::namespace::NamespaceSet {
        &self.namespaces
    }

    /// The UID translation in force (§2.4.2).
    pub fn uid_mapping(&self) -> torpedo_kernel::namespace::UidMapping {
        self.uid_mapping
    }

    /// The runtime-imposed execution policy this container runs under —
    /// readable from the container stripe alone, so the exec hot path never
    /// needs a second engine lookup while the stripe is held.
    pub fn policy(&self) -> torpedo_kernel::syscalls::ExecPolicy {
        self.ctx.policy
    }
}

/// Errors from engine operations.
#[derive(Debug)]
pub enum EngineError {
    /// The requested `--runtime` is not registered.
    UnknownRuntime(String),
    /// A container with that name already exists.
    DuplicateName(String),
    /// No container with that id.
    NoSuchContainer(String),
    /// The container is not running (crashed or stopped).
    NotRunning(String),
    /// cgroup setup failed.
    Cgroup(CgroupError),
    /// Container start failed before the executor spawned (fault-injected
    /// or a runtime setup error).
    StartFailed(String),
    /// Writing the container's cgroup limits failed.
    CgroupWriteFailed(String),
    /// The runtime hit a transient error executing a syscall.
    ExecFault(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownRuntime(name) => write!(f, "unknown runtime: {name}"),
            EngineError::DuplicateName(name) => write!(f, "container name in use: {name}"),
            EngineError::NoSuchContainer(name) => write!(f, "no such container: {name}"),
            EngineError::NotRunning(name) => write!(f, "container not running: {name}"),
            EngineError::Cgroup(err) => write!(f, "cgroup setup failed: {err}"),
            EngineError::StartFailed(name) => write!(f, "container start failed: {name}"),
            EngineError::CgroupWriteFailed(name) => {
                write!(f, "cgroup write failed for container: {name}")
            }
            EngineError::ExecFault(name) => {
                write!(f, "transient runtime exec error in container: {name}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CgroupError> for EngineError {
    fn from(err: CgroupError) -> Self {
        EngineError::Cgroup(err)
    }
}

/// The container engine.
pub struct Engine {
    runtimes: HashMap<&'static str, Box<dyn Runtime>>,
    /// Containers behind per-container lock stripes: the exec hot path
    /// locks only the stripe of the container it drives, so concurrent
    /// executors in different containers proceed without contention.
    containers: HashMap<String, Mutex<Container>>,
    docker_cgroup: CgroupId,
    /// Runtimes that have started at least one container (cold-start state).
    warmed_runtimes: std::collections::HashSet<&'static str>,
    /// Startup latencies measured since the last drain (startup oracle feed).
    startup_log: Vec<Usecs>,
    /// Fault injector for robustness testing; `None` (the default) means
    /// every fault check is a single branch on an empty `Option`.
    faults: Option<Arc<dyn FaultInjector>>,
    /// Span sink for the engine's share of the snapshot stage
    /// ([`Engine::round_overhead`]); disabled (free) by default.
    telemetry: Telemetry,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("runtimes", &self.runtimes.keys().collect::<Vec<_>>())
            .field("containers", &self.containers.len())
            .finish()
    }
}

impl Engine {
    /// Start an engine on `kernel` with runC, crun, gVisor and Kata registered.
    pub fn new(kernel: &mut Kernel) -> Engine {
        let docker_cgroup = kernel
            .cgroups
            .create(
                torpedo_kernel::cgroup::CgroupTree::ROOT,
                "docker",
                CgroupLimits::default(),
            )
            .expect("root cgroup exists");
        let mut engine = Engine {
            runtimes: HashMap::new(),
            containers: HashMap::new(),
            docker_cgroup,
            warmed_runtimes: std::collections::HashSet::new(),
            startup_log: Vec::new(),
            faults: None,
            telemetry: Telemetry::disabled(),
        };
        engine.register_runtime(Box::new(RunC::new()));
        engine.register_runtime(Box::new(Crun::new()));
        engine.register_runtime(Box::new(GVisor::new()));
        engine.register_runtime(Box::new(Kata::new()));
        engine
    }

    /// Register (or replace) a runtime implementation — the §5.2 extension
    /// point for `crun`, patched Sentries, etc.
    pub fn register_runtime(&mut self, runtime: Box<dyn Runtime>) {
        self.runtimes.insert(runtime.name(), runtime);
    }

    /// Install a fault injector; subsequent engine I/O rolls against it.
    pub fn set_fault_injector(&mut self, injector: Arc<dyn FaultInjector>) {
        self.faults = Some(injector);
    }

    /// Remove the fault injector (back to the zero-cost production path).
    pub fn clear_fault_injector(&mut self) {
        self.faults = None;
    }

    /// Install a telemetry handle; the engine's round-overhead charge then
    /// records under the `snapshot` span (nested inside the observer's).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Faults injected so far (all-zero when no injector is installed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default()
    }

    /// Roll the installed injector, if any.
    fn fault(&self, kind: FaultKind, scope: &str) -> bool {
        match &self.faults {
            Some(f) => f.roll(kind, scope),
            None => false,
        }
    }

    /// Registered runtime names.
    pub fn runtime_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.runtimes.keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Create and start a container.
    ///
    /// # Errors
    /// [`EngineError::UnknownRuntime`] for an unregistered `--runtime`,
    /// [`EngineError::DuplicateName`] for a name collision.
    pub fn create(
        &mut self,
        kernel: &mut Kernel,
        spec: ContainerSpec,
    ) -> Result<ContainerId, EngineError> {
        let runtime = self
            .runtimes
            .get(spec.runtime.as_str())
            .ok_or_else(|| EngineError::UnknownRuntime(spec.runtime.clone()))?;
        if self.containers.contains_key(&spec.name) {
            return Err(EngineError::DuplicateName(spec.name.clone()));
        }
        if self.fault(FaultKind::StartFail, &spec.name) {
            return Err(EngineError::StartFailed(spec.name.clone()));
        }
        if self.fault(FaultKind::CgroupWriteFail, &spec.name) {
            return Err(EngineError::CgroupWriteFailed(spec.name.clone()));
        }
        let cgroup = kernel.cgroups.create(
            self.docker_cgroup,
            &format!("docker/{}", spec.name),
            CgroupLimits {
                cpu_quota_cores: spec.cpus,
                cpuset: if spec.cpuset.is_empty() {
                    None
                } else {
                    Some(spec.cpuset.clone())
                },
                memory_bytes: spec.memory_bytes,
                blkio_weight: None,
            },
        )?;
        // Startup latency: dockerd + runtime setup; cold the first time a
        // runtime starts anything on this node (§5.1's cold-start caveat).
        let cold = self.warmed_runtimes.insert(runtime.name());
        let startup = runtime.startup_cost(cold);
        self.startup_log.push(startup);
        let core = spec.cpuset.first().copied().unwrap_or(0);
        let executor_pid = kernel.procs.spawn(
            &format!("syz-executor-{}", spec.name),
            ProcessKind::Executor {
                container: spec.name.clone(),
            },
            cgroup,
        );
        let sentry_pid = if matches!(runtime.kind(), crate::RuntimeKind::Sandboxed) {
            Some(kernel.procs.spawn(
                &format!("runsc-sandbox-{}", spec.name),
                ProcessKind::Daemon(DaemonKind::GvisorSentry),
                cgroup,
            ))
        } else {
            None
        };
        // Namespace setup (§2.2.2): every container gets fresh PID, NET,
        // MNT, UTS and IPC instances; the USER namespace only under
        // userns-remap (Docker leaves it 1:1 by default — §2.4.2's hazard).
        use torpedo_kernel::namespace::{NamespaceKind, NamespaceSet, NsId, UidMapping};
        let mut namespaces = NamespaceSet::host();
        let ns_base = (self.containers.len() as u32 + 1) * 16;
        for (i, kind) in [
            NamespaceKind::Pid,
            NamespaceKind::Net,
            NamespaceKind::Mount,
            NamespaceKind::Uts,
            NamespaceKind::Ipc,
        ]
        .into_iter()
        .enumerate()
        {
            namespaces.set(kind, NsId(ns_base + i as u32));
        }
        let uid_mapping = if spec.userns_remap {
            namespaces.set(NamespaceKind::User, NsId(ns_base + 5));
            UidMapping::subuid()
        } else {
            UidMapping::identity()
        };
        let id = ContainerId(spec.name.clone());
        let ctx = ExecContext {
            pid: executor_pid,
            cgroup,
            core,
            cpuset: if spec.cpuset.is_empty() {
                (0..kernel.cores()).collect()
            } else {
                spec.cpuset.clone()
            },
            policy: self.runtimes[spec.runtime.as_str()].policy(),
        };
        self.containers.insert(
            spec.name.clone(),
            Mutex::new(Container {
                spec,
                cgroup,
                executor_pid,
                sentry_pid,
                core,
                state: ContainerState::Running,
                namespaces,
                uid_mapping,
                ctx,
            }),
        );
        Ok(id)
    }

    /// Look up a container, locking its stripe for the guard's lifetime.
    pub fn container(&self, id: &ContainerId) -> Option<MutexGuard<'_, Container>> {
        self.containers.get(&id.0).map(|stripe| stripe.lock())
    }

    /// The lock stripe guarding a container, for callers that want to hold
    /// it across several [`Engine::exec_locked`] calls (the executor locks
    /// once per program iteration instead of once per syscall).
    pub fn stripe(&self, id: &ContainerId) -> Option<&Mutex<Container>> {
        self.containers.get(&id.0)
    }

    /// Ids of all containers, sorted by name.
    pub fn container_ids(&self) -> Vec<ContainerId> {
        let mut names: Vec<&String> = self.containers.keys().collect();
        names.sort();
        names.into_iter().map(|n| ContainerId(n.clone())).collect()
    }

    /// The execution policy of the runtime backing `id`.
    pub fn policy_of(&self, id: &ContainerId) -> Option<torpedo_kernel::syscalls::ExecPolicy> {
        self.containers.get(&id.0).and_then(|stripe| {
            let c = stripe.lock();
            self.runtimes
                .get(c.spec.runtime.as_str())
                .map(|r| r.policy())
        })
    }

    /// Execute one syscall inside a container (no collider).
    ///
    /// # Errors
    /// [`EngineError::NoSuchContainer`] / [`EngineError::NotRunning`].
    pub fn exec(
        &self,
        kernel: &mut Kernel,
        id: &ContainerId,
        req: SyscallRequest<'_>,
    ) -> Result<RuntimeExec, EngineError> {
        self.exec_env(kernel, id, req, ExecEnv::default())
    }

    /// Execute one syscall inside a container with explicit [`ExecEnv`].
    ///
    /// Applies the container's seccomp profile first: blocked syscalls fail
    /// with `EPERM` without reaching the runtime. Locks only the target
    /// container's stripe — concurrent calls into other containers do not
    /// serialize here.
    ///
    /// # Errors
    /// [`EngineError::NoSuchContainer`] / [`EngineError::NotRunning`].
    pub fn exec_env(
        &self,
        kernel: &mut Kernel,
        id: &ContainerId,
        req: SyscallRequest<'_>,
        env: ExecEnv,
    ) -> Result<RuntimeExec, EngineError> {
        let stripe = self
            .containers
            .get(&id.0)
            .ok_or_else(|| EngineError::NoSuchContainer(id.0.clone()))?;
        let mut container = stripe.lock();
        self.exec_locked(kernel, &mut container, req, env)
    }

    /// [`Engine::exec_env`] against an already-locked container stripe.
    /// The executor's hot loop locks the stripe once per program iteration
    /// and issues every call of the program through this entry point.
    ///
    /// # Errors
    /// [`EngineError::NotRunning`] when the container crashed or stopped.
    pub fn exec_locked(
        &self,
        kernel: &mut Kernel,
        container: &mut Container,
        req: SyscallRequest<'_>,
        env: ExecEnv,
    ) -> Result<RuntimeExec, EngineError> {
        if container.state != ContainerState::Running {
            return Err(EngineError::NotRunning(container.spec.name.clone()));
        }
        if self.fault(FaultKind::ExecError, &container.spec.name) {
            return Err(EngineError::ExecFault(container.spec.name.clone()));
        }
        if container.spec.seccomp.blocks(req.name) {
            return Ok(RuntimeExec {
                outcome: seccomp_denied(req.name),
                crash: None,
            });
        }
        // Mandatory access control (§2.2.3): any path payload outside the
        // profile's limits fails with EACCES before reaching the kernel.
        if req
            .paths
            .iter()
            .flatten()
            .any(|p| container.spec.apparmor.denies(p))
        {
            return Ok(RuntimeExec {
                outcome: mac_denied(req.name),
                crash: None,
            });
        }
        let exec = if self.fault(FaultKind::ContainerCrash, &container.spec.name) {
            // Synthesize a runtime-bug crash; the shared crash path below
            // transitions the container and reaps its processes.
            RuntimeExec {
                outcome: fault_crash_outcome(req.name),
                crash: Some(ContainerCrash {
                    reason: "fault-injected-crash".into(),
                    syscall: req.name.to_string(),
                    args: req.args,
                }),
            }
        } else {
            // Hot path: a panic here takes the whole worker thread with it,
            // so a stale runtime name degrades to a typed error instead.
            let runtime = self
                .runtimes
                .get(container.spec.runtime.as_str())
                .ok_or_else(|| EngineError::UnknownRuntime(container.spec.runtime.clone()))?;
            runtime.execute(kernel, &container.ctx, req, env)
        };
        if let Some(crash) = &exec.crash {
            container.state = ContainerState::Crashed(crash.clone());
            kernel.procs.exit(container.executor_pid);
            if let Some(sentry) = container.sentry_pid {
                kernel.procs.exit(sentry);
            }
        } else if exec.outcome.fatal_signal.is_some() {
            // The workload process died; the entrypoint restarts it (the
            // SYZKALLER executor loop behaviour) at a small in-cgroup cost.
            kernel.procs.restart(container.executor_pid);
            kernel.charge(
                container.core,
                CpuCategory::User,
                Usecs(20),
                container.executor_pid,
                container.cgroup,
            );
            kernel.charge(
                container.core,
                CpuCategory::System,
                Usecs(35),
                container.executor_pid,
                container.cgroup,
            );
        }
        Ok(exec)
    }

    /// Restart a crashed container (fresh executor process, same spec).
    ///
    /// # Errors
    /// [`EngineError::NoSuchContainer`] if absent.
    pub fn restart(&mut self, kernel: &mut Kernel, id: &ContainerId) -> Result<(), EngineError> {
        if self.fault(FaultKind::StartFail, &id.0) {
            return Err(EngineError::StartFailed(id.0.clone()));
        }
        let container = self
            .containers
            .get_mut(&id.0)
            .ok_or_else(|| EngineError::NoSuchContainer(id.0.clone()))?
            .get_mut();
        // Resolve the runtime before mutating any kernel or container state:
        // the supervised recovery path calls restart and must see an error,
        // not a panic, if the spec references a runtime that was never
        // registered.
        let runtime = self
            .runtimes
            .get(container.spec.runtime.as_str())
            .ok_or_else(|| EngineError::UnknownRuntime(container.spec.runtime.clone()))?;
        let sandboxed = matches!(runtime.kind(), crate::RuntimeKind::Sandboxed);
        let startup = runtime.startup_cost(false);
        kernel.release_process_state(container.executor_pid);
        container.executor_pid = kernel.procs.spawn(
            &format!("syz-executor-{}", container.spec.name),
            ProcessKind::Executor {
                container: container.spec.name.clone(),
            },
            container.cgroup,
        );
        container.ctx.pid = container.executor_pid;
        if sandboxed {
            container.sentry_pid = Some(kernel.procs.spawn(
                &format!("runsc-sandbox-{}", container.spec.name),
                ProcessKind::Daemon(DaemonKind::GvisorSentry),
                container.cgroup,
            ));
        }
        container.state = ContainerState::Running;
        self.startup_log.push(startup);
        Ok(())
    }

    /// Remove a container and its cgroup.
    ///
    /// # Errors
    /// [`EngineError::NoSuchContainer`] if absent.
    pub fn remove(&mut self, kernel: &mut Kernel, id: &ContainerId) -> Result<(), EngineError> {
        let container = self
            .containers
            .remove(&id.0)
            .ok_or_else(|| EngineError::NoSuchContainer(id.0.clone()))?
            .into_inner();
        kernel.procs.exit(container.executor_pid);
        if let Some(sentry) = container.sentry_pid {
            kernel.procs.exit(sentry);
        }
        kernel.release_process_state(container.executor_pid);
        kernel.cgroups.remove(container.cgroup)?;
        Ok(())
    }

    /// containerd-style container metrics (Table 2.2: "container-level
    /// metrics, cgroup stats and OOM events").
    pub fn metrics(&self, kernel: &Kernel, id: &ContainerId) -> Option<ContainerMetrics> {
        let container = self.containers.get(&id.0)?.lock();
        let cg = kernel.cgroups.get(container.cgroup)?;
        let restarts = kernel
            .procs
            .get(container.executor_pid)
            .map_or(0, |p| p.restarts());
        Some(ContainerMetrics {
            cpu_charged: cg.charged_cpu(),
            memory_used: cg.charged_memory(),
            io_bytes: cg.charged_io_bytes(),
            oom_events: cg.oom_events(),
            workload_restarts: restarts,
            state: container.state.clone(),
        })
    }

    /// Drain the startup latencies measured since the last call (the
    /// startup oracle's feed).
    pub fn drain_startup_log(&mut self) -> Vec<Usecs> {
        std::mem::take(&mut self.startup_log)
    }

    /// Charge the engine's per-round overhead: dockerd/containerd CPU for
    /// each streaming container, the TTY/LDISC flush deferral of §3.3, and
    /// any standing runtime overhead (sentry housekeeping, VMM tax).
    pub fn round_overhead(&self, kernel: &mut Kernel, window: Usecs) {
        // The engine's slice of the observer's snapshot stage; nested inside
        // the observer's own snapshot span when telemetry is enabled.
        let _span = self.telemetry.span(SpanKind::Snapshot);
        // Snapshot every stripe once, then sort by name: `containers` is a
        // HashMap, and neither its per-instance iteration order nor lock
        // timing must leak into charge order or the deferral ledger (round
        // logs are replay-deterministic).
        type Snap = (
            String,
            Vec<usize>,
            Option<(CgroupId, Pid, usize, &'static str)>,
        );
        let mut snapshot: Vec<Snap> = self
            .containers
            .values()
            .map(|stripe| {
                let c = stripe.lock();
                let running = (c.state == ContainerState::Running)
                    .then(|| {
                        self.runtimes
                            .get(c.spec.runtime.as_str())
                            .map(|r| (c.cgroup, c.executor_pid, c.core, r.name()))
                    })
                    .flatten();
                (c.spec.name.clone(), c.spec.cpuset.clone(), running)
            })
            .collect();
        snapshot.sort_by(|a, b| a.0.cmp(&b.0));
        let running: Vec<(CgroupId, Pid, usize, &'static str)> = snapshot
            .iter()
            .filter_map(|(_, _, running)| *running)
            .collect();
        if running.is_empty() {
            return;
        }
        // dockerd + containerd stream executor output: a little user+system
        // per active container, in the system slice.
        let dockerd = kernel.boot.dockerd;
        let containerd = kernel.boot.containerd;
        let dcg = kernel
            .procs
            .get(dockerd)
            .map(|p| p.cgroup())
            .unwrap_or(torpedo_kernel::cgroup::CgroupTree::ROOT);
        let ccg = kernel
            .procs
            .get(containerd)
            .map(|p| p.cgroup())
            .unwrap_or(torpedo_kernel::cgroup::CgroupTree::ROOT);
        let all_cpusets: Vec<usize> = snapshot
            .iter()
            .flat_map(|(_, cpuset, _)| cpuset.iter().copied())
            .collect();
        let engine_core = kernel.pick_victim_core(&all_cpusets);
        let per_container = window.scale(0.004);
        for (cgroup, pid, core, runtime_name) in &running {
            kernel.charge(engine_core, CpuCategory::User, per_container, dockerd, dcg);
            kernel.charge(
                engine_core,
                CpuCategory::System,
                per_container.scale(0.6),
                containerd,
                ccg,
            );
            // Output streaming flushes through the TTY LDISC work queue —
            // deferred kernel work the container is never charged for.
            kernel.defer_work(
                DeferralChannel::TtyFlush,
                *pid,
                *cgroup,
                &all_cpusets,
                window.scale(0.002),
                "write",
            );
            // Standing runtime overhead inside the container's own budget.
            let standing = self
                .runtimes
                .get(*runtime_name)
                .map_or(0.0, |r| r.standing_overhead());
            if standing > 0.0 {
                kernel.charge(
                    *core,
                    CpuCategory::System,
                    window.scale(standing),
                    *pid,
                    *cgroup,
                );
            }
        }
    }
}

/// The outcome a program observes when a fault kills its container mid-call.
fn fault_crash_outcome(name: &str) -> SyscallOutcome {
    SyscallOutcome {
        retval: Errno::EIO.as_retval(),
        errno: Some(Errno::EIO),
        fatal_signal: None,
        user: Usecs(1),
        system: Usecs(4),
        blocked: Usecs::ZERO,
        coverage: vec![fallback_signal(
            nr_of(name).unwrap_or(u32::MAX),
            Some(Errno::EIO),
        )],
        throttled: false,
    }
}

fn mac_denied(name: &str) -> SyscallOutcome {
    SyscallOutcome {
        retval: Errno::EACCES.as_retval(),
        errno: Some(Errno::EACCES),
        fatal_signal: None,
        user: Usecs(1),
        system: Usecs(3),
        blocked: Usecs::ZERO,
        coverage: vec![fallback_signal(
            nr_of(name).unwrap_or(u32::MAX),
            Some(Errno::EACCES),
        )],
        throttled: false,
    }
}

fn seccomp_denied(name: &str) -> SyscallOutcome {
    SyscallOutcome {
        retval: Errno::EPERM.as_retval(),
        errno: Some(Errno::EPERM),
        fatal_signal: None,
        user: Usecs(1),
        system: Usecs(2),
        blocked: Usecs::ZERO,
        coverage: vec![fallback_signal(
            nr_of(name).unwrap_or(u32::MAX),
            Some(Errno::EPERM),
        )],
        throttled: false,
    }
}

/// Build the one-container replay environment shared by crash reproduction
/// and forensics bundle replay: a fresh engine on `kernel` running a single
/// container of `runtime` named `name`, pinned to core 0 with a full-core
/// quota — the solo confirmation shape of §4.1.3.
///
/// # Errors
/// Propagates [`Engine::create`] failures (unknown runtime, injected start
/// faults, …).
pub fn replay_environment(
    kernel: &mut Kernel,
    runtime: &str,
    name: &str,
) -> Result<(Engine, ContainerId), EngineError> {
    let mut engine = Engine::new(kernel);
    let id = engine.create(
        kernel,
        ContainerSpec::new(name)
            .runtime_name(runtime)
            .cpuset_cpus(&[0])
            .cpus(1.0),
    )?;
    Ok((engine, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::seccomp::SeccompProfile;

    fn setup() -> (Kernel, Engine) {
        let mut kernel = Kernel::with_defaults();
        let engine = Engine::new(&mut kernel);
        (kernel, engine)
    }

    #[test]
    fn registry_has_all_runtimes() {
        let (_, engine) = setup();
        assert_eq!(
            engine.runtime_names(),
            vec!["crun", "kata", "runc", "runsc"]
        );
    }

    #[test]
    fn create_applies_table_3_1_restrictions() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(
                &mut kernel,
                ContainerSpec::new("fuzz-0").cpuset_cpus(&[2]).cpus(1.5),
            )
            .unwrap();
        let c = engine.container(&id).unwrap();
        assert_eq!(c.core(), 2);
        let cg = kernel.cgroups.get(c.cgroup()).unwrap();
        assert_eq!(cg.limits().cpu_quota_cores, Some(1.5));
        assert_eq!(cg.limits().cpuset, Some(vec![2]));
        assert!(kernel.procs.get(c.executor_pid()).unwrap().alive());
    }

    #[test]
    fn duplicate_and_unknown_runtime_rejected() {
        let (mut kernel, mut engine) = setup();
        engine
            .create(&mut kernel, ContainerSpec::new("dup"))
            .unwrap();
        assert!(matches!(
            engine.create(&mut kernel, ContainerSpec::new("dup")),
            Err(EngineError::DuplicateName(_))
        ));
        assert!(matches!(
            engine.create(&mut kernel, ContainerSpec::new("x").runtime_name("youki")),
            Err(EngineError::UnknownRuntime(_))
        ));
    }

    #[test]
    fn exec_routes_through_runtime() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(&mut kernel, ContainerSpec::new("f").cpuset_cpus(&[0]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(5));
        let exec = engine
            .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
            .unwrap();
        assert!(exec.outcome.retval > 0);
        assert!(exec.crash.is_none());
    }

    #[test]
    fn seccomp_blocks_before_kernel() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(
                &mut kernel,
                ContainerSpec::new("locked").seccomp(SeccompProfile::docker_default()),
            )
            .unwrap();
        kernel.begin_round(Usecs::from_secs(5));
        let exec = engine
            .exec(&mut kernel, &id, SyscallRequest::new("ptrace", [0; 6]))
            .unwrap();
        assert_eq!(exec.outcome.errno, Some(Errno::EPERM));
    }

    #[test]
    fn gvisor_crash_transitions_state_and_restart_recovers() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(
                &mut kernel,
                ContainerSpec::new("g")
                    .runtime_name("runsc")
                    .cpuset_cpus(&[1]),
            )
            .unwrap();
        kernel.begin_round(Usecs::from_secs(5));
        let req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
            .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
        let exec = engine.exec(&mut kernel, &id, req).unwrap();
        assert!(exec.crash.is_some());
        assert!(matches!(
            engine.container(&id).unwrap().state(),
            ContainerState::Crashed(_)
        ));
        // Further execs are rejected until restart.
        assert!(matches!(
            engine.exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6])),
            Err(EngineError::NotRunning(_))
        ));
        engine.restart(&mut kernel, &id).unwrap();
        assert!(matches!(
            engine.container(&id).unwrap().state(),
            ContainerState::Running
        ));
        let ok = engine
            .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
            .unwrap();
        assert!(ok.crash.is_none());
    }

    #[test]
    fn fatal_signal_restarts_workload_in_place() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(&mut kernel, ContainerSpec::new("f").cpuset_cpus(&[0]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(5));
        let exec = engine
            .exec(
                &mut kernel,
                &id,
                SyscallRequest::new("rt_sigreturn", [0; 6]),
            )
            .unwrap();
        assert!(exec.outcome.fatal_signal.is_some());
        let pid = engine.container(&id).unwrap().executor_pid();
        let proc = kernel.procs.get(pid).unwrap();
        assert!(proc.alive(), "entrypoint restarted the workload");
        assert_eq!(proc.restarts(), 1);
    }

    #[test]
    fn round_overhead_defers_tty_flushes() {
        let (mut kernel, mut engine) = setup();
        engine
            .create(&mut kernel, ContainerSpec::new("a").cpuset_cpus(&[0]))
            .unwrap();
        engine
            .create(&mut kernel, ContainerSpec::new("b").cpuset_cpus(&[1]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(5));
        engine.round_overhead(&mut kernel, Usecs::from_secs(5));
        let out = kernel.finish_round(&[0, 1]);
        let tty: Vec<_> = out
            .deferrals
            .iter()
            .filter(|e| e.channel == DeferralChannel::TtyFlush)
            .collect();
        assert_eq!(tty.len(), 2, "one flush stream per container");
    }

    #[test]
    fn apparmor_profile_blocks_paths_with_eacces() {
        use torpedo_kernel::lsm::MacProfile;
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(
                &mut kernel,
                ContainerSpec::new("confined").apparmor(MacProfile::docker_default()),
            )
            .unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        let denied = SyscallRequest::new("open", [0, 2, 0, 0, 0, 0])
            .with_path(0, "/proc/sys/fs/mqueue/msg_max");
        let exec = engine.exec(&mut kernel, &id, denied).unwrap();
        assert_eq!(exec.outcome.errno, Some(Errno::EACCES));
        let allowed = SyscallRequest::new("open", [0, 0, 0, 0, 0, 0]).with_path(0, "/etc/passwd");
        let exec = engine.exec(&mut kernel, &id, allowed).unwrap();
        assert!(exec.outcome.retval >= 3);
    }

    #[test]
    fn namespaces_isolate_containers_from_host_and_each_other() {
        use torpedo_kernel::namespace::NamespaceKind;
        let (mut kernel, mut engine) = setup();
        let a = engine
            .create(&mut kernel, ContainerSpec::new("nsa"))
            .unwrap();
        let b = engine
            .create(&mut kernel, ContainerSpec::new("nsb"))
            .unwrap();
        let na = engine.container(&a).unwrap().namespaces().clone();
        let nb = engine.container(&b).unwrap().namespaces().clone();
        assert!(!na.is_host());
        for kind in [NamespaceKind::Pid, NamespaceKind::Net, NamespaceKind::Mount] {
            assert!(!na.shares(&nb, kind), "{kind:?} shared between containers");
        }
        // cgroup namespace stays shared with the host (Docker default) —
        // the §2.4.1 leak surface.
        assert!(na.shares(&nb, NamespaceKind::Cgroup));
    }

    #[test]
    fn userns_remap_controls_root_translation() {
        let (mut kernel, mut engine) = setup();
        let plain = engine
            .create(&mut kernel, ContainerSpec::new("plain"))
            .unwrap();
        let remapped = engine
            .create(
                &mut kernel,
                ContainerSpec::new("remapped").userns_remap(true),
            )
            .unwrap();
        assert!(
            engine
                .container(&plain)
                .unwrap()
                .uid_mapping()
                .container_root_is_host_root(),
            "Docker default: container root IS host root (§2.4.2)"
        );
        assert!(
            !engine
                .container(&remapped)
                .unwrap()
                .uid_mapping()
                .container_root_is_host_root(),
            "subuid remapping protects the host"
        );
    }

    #[test]
    fn metrics_surface_cgroup_stats_and_oom_events() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(
                &mut kernel,
                ContainerSpec::new("metered")
                    .cpuset_cpus(&[0])
                    .memory(1 << 20),
            )
            .unwrap();
        kernel.begin_round(Usecs::from_secs(2));
        // A too-large mmap trips the memory controller → OOM event.
        let exec = engine
            .exec(
                &mut kernel,
                &id,
                SyscallRequest::new("mmap", [0, 8 << 20, 3, 0x32, u64::MAX, 0]),
            )
            .unwrap();
        assert_eq!(exec.outcome.errno, Some(Errno::ENOMEM));
        let m = engine.metrics(&kernel, &id).unwrap();
        assert_eq!(m.oom_events, 1);
        assert!(m.cpu_charged > Usecs::ZERO);
        assert_eq!(m.state, ContainerState::Running);
        assert!(engine
            .metrics(&kernel, &ContainerId("ghost".into()))
            .is_none());
    }

    #[test]
    fn remove_tears_down_cgroup() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(&mut kernel, ContainerSpec::new("gone"))
            .unwrap();
        let cg = engine.container(&id).unwrap().cgroup();
        engine.remove(&mut kernel, &id).unwrap();
        assert!(kernel.cgroups.get(cg).is_none());
        assert!(engine.container(&id).is_none());
        assert!(matches!(
            engine.remove(&mut kernel, &id),
            Err(EngineError::NoSuchContainer(_))
        ));
    }

    fn injecting(config: crate::faults::FaultConfig) -> (Kernel, Engine) {
        let (kernel, mut engine) = setup();
        engine.set_fault_injector(Arc::new(crate::faults::FaultPlan::new(config)));
        (kernel, engine)
    }

    #[test]
    fn injected_start_failure_surfaces_as_start_failed() {
        let (mut kernel, mut engine) = injecting(crate::faults::FaultConfig {
            start_fail: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            engine.create(&mut kernel, ContainerSpec::new("fuzz-0")),
            Err(EngineError::StartFailed(_))
        ));
        assert_eq!(engine.fault_counters().start_fail, 1);
        assert!(engine.container_ids().is_empty());
    }

    #[test]
    fn injected_cgroup_write_failure_blocks_creation() {
        let (mut kernel, mut engine) = injecting(crate::faults::FaultConfig {
            cgroup_write_fail: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            engine.create(&mut kernel, ContainerSpec::new("fuzz-0")),
            Err(EngineError::CgroupWriteFailed(_))
        ));
        assert_eq!(engine.fault_counters().cgroup_write_fail, 1);
    }

    #[test]
    fn injected_crash_takes_the_real_crash_path() {
        let (mut kernel, mut engine) = injecting(crate::faults::FaultConfig {
            container_crash: 1.0,
            ..Default::default()
        });
        let id = engine
            .create(&mut kernel, ContainerSpec::new("fuzz-0").cpuset_cpus(&[0]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        let exec = engine
            .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
            .unwrap();
        let crash = exec.crash.expect("fault produced a crash");
        assert_eq!(crash.reason, "fault-injected-crash");
        assert!(matches!(
            engine.container(&id).unwrap().state(),
            ContainerState::Crashed(_)
        ));
        // The same recovery that works for runtime-bug crashes works here.
        assert!(matches!(
            engine.exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6])),
            Err(EngineError::NotRunning(_))
        ));
        assert_eq!(engine.fault_counters().container_crash, 1);
    }

    #[test]
    fn injected_exec_error_is_transient() {
        let (mut kernel, mut engine) = injecting(crate::faults::FaultConfig {
            seed: 3,
            exec_error: 0.5,
            ..Default::default()
        });
        let id = engine
            .create(&mut kernel, ContainerSpec::new("fuzz-0").cpuset_cpus(&[0]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        let mut faulted = 0;
        let mut succeeded = 0;
        for _ in 0..64 {
            match engine.exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6])) {
                Err(EngineError::ExecFault(_)) => faulted += 1,
                Ok(exec) => {
                    assert!(exec.crash.is_none());
                    succeeded += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            // Exec faults are transient: the container stays Running.
            assert!(matches!(
                engine.container(&id).unwrap().state(),
                ContainerState::Running
            ));
        }
        assert!(faulted > 0 && succeeded > 0);
        assert_eq!(engine.fault_counters().exec_error, faulted);
    }

    #[test]
    fn no_injector_means_no_faults_and_zero_counters() {
        let (mut kernel, mut engine) = setup();
        let id = engine
            .create(&mut kernel, ContainerSpec::new("fuzz-0").cpuset_cpus(&[0]))
            .unwrap();
        kernel.begin_round(Usecs::from_secs(1));
        for _ in 0..32 {
            let exec = engine
                .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
                .unwrap();
            assert!(exec.crash.is_none());
        }
        assert_eq!(
            engine.fault_counters(),
            crate::faults::FaultCounters::default()
        );
    }
}
