//! Red Hat's `crun` (§5.2): "another example of a baremetal container
//! runtime" and the paper's first suggested extension target.
//!
//! crun is a native runtime like runC but implemented in C rather than Go:
//! container *setup* is faster and the memory footprint smaller, while the
//! post-setup behaviour is identical — the containerized process shares
//! the host kernel, so every work-deferral channel remains reachable.
//! "Switching TORPEDO to use these runtimes … would require minimal
//! adjustments" — here it is one [`Runtime`] impl plus a registry call.

use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::syscalls::{self, ExecContext, ExecPolicy, SyscallRequest};

use crate::spec::RuntimeKind;
use crate::{completed, ExecEnv, Runtime, RuntimeExec};

/// The crun runtime model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crun;

impl Crun {
    /// A crun instance.
    pub fn new() -> Crun {
        Crun
    }

    /// Relative container startup cost vs runC (crun's headline number is
    /// roughly 2x faster creation). Consumed by the startup-time oracle's
    /// experiments.
    pub fn startup_factor(&self) -> f64 {
        0.5
    }
}

impl Runtime for Crun {
    fn name(&self) -> &'static str {
        "crun"
    }

    fn kind(&self) -> RuntimeKind {
        RuntimeKind::Native
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            host_deferrals: true,
            overhead: 1.0,
            kcov_available: true,
        }
    }

    fn execute(
        &self,
        kernel: &mut Kernel,
        ctx: &ExecContext,
        req: SyscallRequest<'_>,
        _env: ExecEnv,
    ) -> RuntimeExec {
        completed(syscalls::dispatch(kernel, ctx, req))
    }

    fn startup_cost(&self, cold: bool) -> torpedo_kernel::Usecs {
        let warm = torpedo_kernel::Usecs::from_millis(150);
        if cold {
            warm.scale(3.0)
        } else {
            warm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::cgroup::CgroupTree;
    use torpedo_kernel::process::ProcessKind;
    use torpedo_kernel::{DeferralChannel, Usecs};

    #[test]
    fn crun_behaves_like_a_native_runtime() {
        let mut kernel = Kernel::with_defaults();
        let cg = kernel
            .cgroups
            .create(CgroupTree::ROOT, "docker/c", Default::default())
            .unwrap();
        let pid = kernel.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "c".into(),
            },
            cg,
        );
        let ctx = ExecContext {
            pid,
            cgroup: cg,
            core: 0,
            cpuset: vec![0],
            policy: Crun.policy(),
        };
        kernel.begin_round(Usecs::from_secs(2));
        // The modprobe storm must be reachable, exactly as under runC.
        let exec = Crun.execute(
            &mut kernel,
            &ctx,
            SyscallRequest::new("socket", [9, 3, 0, 0, 0, 0]),
            ExecEnv::default(),
        );
        assert_eq!(exec.outcome.retval, -97);
        let out = kernel.finish_round(&[0]);
        assert!(out
            .deferrals
            .iter()
            .any(|e| matches!(e.channel, DeferralChannel::UserModeHelper(_))));
    }

    #[test]
    fn identity_and_startup() {
        let crun = Crun::new();
        assert_eq!(crun.name(), "crun");
        assert_eq!(crun.kind(), RuntimeKind::Native);
        assert_eq!(crun.policy().overhead, 1.0);
        assert!(crun.startup_factor() < 1.0);
        assert!(crun.supports_kcov());
    }
}
