//! The virtualized runtime: a model of Kata Containers (§2.3.2, §5.2).
//!
//! Kata boxes the container in a lightweight VM with its own guest kernel.
//! Host work-deferral channels are unreachable (the guest kernel defers to
//! *guest* kworkers, inside the VM's cgroup), syscall overhead sits between
//! runC and gVisor, and the VMM itself consumes a standing slice — the
//! "non-trivial performance overhead" the paper attributes to VM-based
//! runtimes.
//!
//! This runtime is the §5.2 future-work target, implemented here so the
//! ablation benches can compare all three designs.

use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::syscalls::{self, ExecContext, ExecPolicy, SyscallRequest};

use crate::spec::RuntimeKind;
use crate::{completed, ExecEnv, Runtime, RuntimeExec};

/// The Kata runtime model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kata;

impl Kata {
    /// A Kata instance.
    pub fn new() -> Kata {
        Kata
    }
}

impl Runtime for Kata {
    fn name(&self) -> &'static str {
        "kata"
    }

    fn kind(&self) -> RuntimeKind {
        RuntimeKind::Virtualized
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            host_deferrals: false,
            // VM exits are cheaper than ptrace interception but not free.
            overhead: 1.35,
            kcov_available: false,
        }
    }

    fn execute(
        &self,
        kernel: &mut Kernel,
        ctx: &ExecContext,
        req: SyscallRequest<'_>,
        _env: ExecEnv,
    ) -> RuntimeExec {
        completed(syscalls::dispatch(kernel, ctx, req))
    }

    fn standing_overhead(&self) -> f64 {
        // VMM + guest-kernel housekeeping: the ~10% VM tax of §2.1.
        0.08
    }

    fn startup_cost(&self, cold: bool) -> torpedo_kernel::Usecs {
        // A full guest VM boot; Firecracker-style optimizations keep the
        // warm path acceptable (§2.3.2).
        let warm = torpedo_kernel::Usecs::from_millis(1800);
        if cold {
            warm.scale(4.0)
        } else {
            warm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::cgroup::CgroupTree;
    use torpedo_kernel::process::ProcessKind;
    use torpedo_kernel::Usecs;

    #[test]
    fn identity_and_overhead_ordering() {
        let kata = Kata::new();
        assert_eq!(kata.name(), "kata");
        assert_eq!(kata.kind(), RuntimeKind::Virtualized);
        // runC < Kata < gVisor on per-syscall overhead.
        assert!(kata.policy().overhead > 1.0);
        assert!(kata.policy().overhead < crate::GVisor::new().policy().overhead);
        // Kata's standing VMM tax exceeds gVisor's sentry housekeeping.
        assert!(kata.standing_overhead() > crate::GVisor::new().standing_overhead());
    }

    #[test]
    fn no_host_deferrals_through_the_vm() {
        let mut kernel = Kernel::with_defaults();
        let cg = kernel
            .cgroups
            .create(CgroupTree::ROOT, "docker/k", Default::default())
            .unwrap();
        let pid = kernel.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "k".into(),
            },
            cg,
        );
        let ctx = ExecContext {
            pid,
            cgroup: cg,
            core: 0,
            cpuset: vec![0],
            policy: Kata.policy(),
        };
        kernel.begin_round(Usecs::from_secs(5));
        let exec = Kata.execute(
            &mut kernel,
            &ctx,
            SyscallRequest::new("sync", [0; 6]),
            ExecEnv::default(),
        );
        assert!(exec.crash.is_none());
        let out = kernel.finish_round(&[0]);
        assert!(
            out.deferrals.is_empty(),
            "guest kworkers stay inside the VM"
        );
    }
}
