//! The native runtime: a model of runC (§2.3.1).
//!
//! A native runtime performs container setup and exits, leaving the
//! containerized process sharing the host kernel directly. Every host
//! work-deferral channel is therefore reachable — which is why all five
//! Table 4.2 adversarial families manifest under runC.

use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::syscalls::{self, ExecContext, ExecPolicy, SyscallRequest};

use crate::spec::RuntimeKind;
use crate::{completed, ExecEnv, Runtime, RuntimeExec};

/// The default Docker runtime: direct host-kernel passthrough.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunC;

impl RunC {
    /// A runC instance.
    pub fn new() -> RunC {
        RunC
    }
}

impl Runtime for RunC {
    fn name(&self) -> &'static str {
        "runc"
    }

    fn kind(&self) -> RuntimeKind {
        RuntimeKind::Native
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            host_deferrals: true,
            overhead: 1.0,
            kcov_available: true,
        }
    }

    fn execute(
        &self,
        kernel: &mut Kernel,
        ctx: &ExecContext,
        req: SyscallRequest<'_>,
        _env: ExecEnv,
    ) -> RuntimeExec {
        completed(syscalls::dispatch(kernel, ctx, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::cgroup::CgroupTree;
    use torpedo_kernel::process::ProcessKind;
    use torpedo_kernel::{DeferralChannel, Usecs};

    fn ctx(kernel: &mut Kernel) -> ExecContext {
        let cg = kernel
            .cgroups
            .create(CgroupTree::ROOT, "docker/t", Default::default())
            .unwrap();
        let pid = kernel.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "t".into(),
            },
            cg,
        );
        ExecContext {
            pid,
            cgroup: cg,
            core: 0,
            cpuset: vec![0],
            policy: RunC.policy(),
        }
    }

    #[test]
    fn passthrough_reaches_host_deferral_channels() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        // socket() with a modular family: the modprobe storm must fire.
        let exec = RunC.execute(
            &mut kernel,
            &ctx,
            SyscallRequest::new("socket", [9, 3, 0, 0, 0, 0]),
            ExecEnv::default(),
        );
        assert!(exec.crash.is_none());
        assert_eq!(exec.outcome.retval, -97);
        let out = kernel.finish_round(&[0]);
        assert!(out
            .deferrals
            .iter()
            .any(|e| matches!(e.channel, DeferralChannel::UserModeHelper(_))));
    }

    #[test]
    fn identity() {
        assert_eq!(RunC.name(), "runc");
        assert_eq!(RunC.kind(), RuntimeKind::Native);
        assert!(RunC.supports_kcov());
        assert_eq!(RunC.standing_overhead(), 0.0);
    }
}
