//! `torpedo-runtime`: container runtimes and the Docker-like engine.
//!
//! Models the three runtime designs the paper discusses (§2.3.2) — native
//! ([`runc::RunC`]), sandboxed ([`gvisor::GVisor`]) and virtualized
//! ([`kata::Kata`]) — plus a Docker-style [`engine::Engine`] that creates
//! containers with the Table 3.1 resource restrictions and mediates syscall
//! execution through the selected runtime.
//!
//! # Examples
//! ```
//! use torpedo_kernel::{Kernel, SyscallRequest, Usecs};
//! use torpedo_runtime::engine::Engine;
//! use torpedo_runtime::spec::ContainerSpec;
//!
//! let mut kernel = Kernel::with_defaults();
//! let mut engine = Engine::new(&mut kernel);
//! let id = engine
//!     .create(&mut kernel, ContainerSpec::new("fuzz-0").cpuset_cpus(&[0]).cpus(1.0))
//!     .unwrap();
//! kernel.begin_round(Usecs::from_secs(5));
//! let exec = engine
//!     .exec(&mut kernel, &id, SyscallRequest::new("getpid", [0; 6]))
//!     .unwrap();
//! assert!(exec.outcome.retval > 0);
//! ```

pub mod crun;
pub mod engine;
pub mod faults;
pub mod gvisor;
pub mod kata;
pub mod pods;
pub mod runc;
pub mod spec;

use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::syscalls::{ExecContext, ExecPolicy, SyscallOutcome, SyscallRequest};

pub use crun::Crun;
pub use engine::{ContainerId, ContainerState, Engine};
pub use faults::{
    checkpoint_fault_hit, FaultConfig, FaultCounters, FaultInjector, FaultKind, FaultPlan,
};
pub use gvisor::GVisor;
pub use kata::Kata;
pub use pods::{Kubelet, Pod, PodPhase, PodSpec, RestartPolicy};
pub use runc::RunC;
pub use spec::{ContainerSpec, RuntimeKind};

/// Environment flags for one syscall execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecEnv {
    /// True when the executor is running calls concurrently on multiple
    /// threads (SYZKALLER's "collider" mode) — the trigger for one of the
    /// gVisor `open(2)` crashes (§4.4.1).
    pub collider: bool,
}

/// Why a container died under a runtime bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerCrash {
    /// Short machine-readable reason, e.g. `"sentry-panic-open-flags"`.
    pub reason: String,
    /// The syscall that triggered the crash.
    pub syscall: String,
    /// The raw arguments at crash time.
    pub args: [u64; 6],
}

impl std::fmt::Display for ContainerCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "container crash: {} in {}({:#x}, {:#x}, …)",
            self.reason, self.syscall, self.args[0], self.args[1]
        )
    }
}

/// Result of one runtime-mediated syscall execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeExec {
    /// The syscall outcome as observed by the calling program.
    pub outcome: SyscallOutcome,
    /// Set when the *container* (not just the process) died.
    pub crash: Option<ContainerCrash>,
}

/// A container runtime: translates container syscalls onto the host kernel.
///
/// Implementing a new runtime and registering it with
/// [`engine::Engine::register_runtime`] is exactly the §5.2 extension path
/// (`crun`, Kata, …).
pub trait Runtime: std::fmt::Debug + Send + Sync {
    /// Registered name (`"runc"`, `"runsc"`, `"kata"`).
    fn name(&self) -> &'static str;

    /// The design family.
    fn kind(&self) -> RuntimeKind;

    /// The execution policy containers under this runtime run with.
    fn policy(&self) -> ExecPolicy;

    /// Whether kcov coverage collection works under this runtime (gVisor
    /// lacks the required ioctl, §3.1.2).
    fn supports_kcov(&self) -> bool {
        self.policy().kcov_available
    }

    /// Execute one syscall on behalf of a containerized process.
    fn execute(
        &self,
        kernel: &mut Kernel,
        ctx: &ExecContext,
        req: SyscallRequest<'_>,
        env: ExecEnv,
    ) -> RuntimeExec;

    /// Fixed per-round runtime overhead charged inside the container's
    /// cgroup (a virtualized runtime's VMM tax); fraction of the window.
    fn standing_overhead(&self) -> f64 {
        0.0
    }

    /// Container startup latency (§5.1 names startup time "an extremely
    /// relevant metric"). `cold` models the first start on a node (image
    /// pull, VM boot) — the cold-start phenomenon the startup oracle must
    /// not mistake for degradation.
    fn startup_cost(&self, cold: bool) -> torpedo_kernel::Usecs {
        let warm = torpedo_kernel::Usecs::from_millis(300);
        if cold {
            warm.scale(3.0)
        } else {
            warm
        }
    }
}

/// Convenience: a completed execution with no crash.
pub(crate) fn completed(outcome: SyscallOutcome) -> RuntimeExec {
    RuntimeExec {
        outcome,
        crash: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_display_mentions_syscall() {
        let crash = ContainerCrash {
            reason: "sentry-panic-open-flags".into(),
            syscall: "open".into(),
            args: [0x7f00, 0x680002, 0x20, 0, 0, 0],
        };
        let shown = crash.to_string();
        assert!(shown.contains("open"));
        assert!(shown.contains("sentry-panic-open-flags"));
    }
}
