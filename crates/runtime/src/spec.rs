//! Container specifications: the Docker-facing resource-restriction surface
//! TORPEDO supports (Table 3.1 of the paper: `runtime`, `cpuset-cpus`,
//! `cpus`), plus the memory limit and seccomp/LSM knobs of §2.2.

use torpedo_kernel::lsm::MacProfile;
use torpedo_kernel::seccomp::SeccompProfile;

/// Which container runtime backs a container (§2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuntimeKind {
    /// Native: shares the host kernel directly (runC, crun).
    #[default]
    Native,
    /// Sandboxed: a userspace kernel proxy (gVisor).
    Sandboxed,
    /// Virtualized: a full VM boundary (Kata, Firecracker).
    Virtualized,
}

/// A Docker-style container specification.
///
/// Build one with [`ContainerSpec::new`] and the chained setters:
///
/// ```
/// use torpedo_runtime::spec::ContainerSpec;
///
/// let spec = ContainerSpec::new("fuzz-0")
///     .runtime_name("runc")
///     .cpuset_cpus(&[0])
///     .cpus(1.0);
/// assert_eq!(spec.cpuset, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct ContainerSpec {
    /// Container name.
    pub name: String,
    /// Runtime to use (`--runtime`), by registered name: `"runc"`,
    /// `"runsc"` (gVisor), `"kata"`.
    pub runtime: String,
    /// Physical cores the container may use (`--cpuset-cpus`).
    pub cpuset: Vec<usize>,
    /// CPU utilization cap in cores (`--cpus`).
    pub cpus: Option<f64>,
    /// Memory limit in bytes (`--memory`).
    pub memory_bytes: Option<u64>,
    /// Seccomp profile (`--security-opt seccomp=…`).
    pub seccomp: SeccompProfile,
    /// AppArmor-style MAC profile (`--security-opt apparmor=…`, §2.2.3).
    pub apparmor: MacProfile,
    /// Enable subuid-based user-namespace remapping (Docker
    /// `userns-remap`, §2.4.2) — off by default, as in Docker.
    pub userns_remap: bool,
    /// Image name (informational).
    pub image: String,
}

impl ContainerSpec {
    /// A spec with TORPEDO's defaults: runC, unconfined seccomp (so fuzzing
    /// is not censored), no limits, the packaged executor image.
    pub fn new(name: &str) -> ContainerSpec {
        ContainerSpec {
            name: name.to_string(),
            runtime: "runc".to_string(),
            cpuset: Vec::new(),
            cpus: None,
            memory_bytes: None,
            seccomp: SeccompProfile::unconfined(),
            apparmor: MacProfile::unconfined(),
            userns_remap: false,
            image: "torpedo/executor:latest".to_string(),
        }
    }

    /// Set the runtime by name.
    #[must_use]
    pub fn runtime_name(mut self, runtime: &str) -> ContainerSpec {
        self.runtime = runtime.to_string();
        self
    }

    /// Set `--cpuset-cpus`.
    #[must_use]
    pub fn cpuset_cpus(mut self, cores: &[usize]) -> ContainerSpec {
        self.cpuset = cores.to_vec();
        self
    }

    /// Set `--cpus`.
    #[must_use]
    pub fn cpus(mut self, cores: f64) -> ContainerSpec {
        self.cpus = Some(cores);
        self
    }

    /// Set `--memory`.
    #[must_use]
    pub fn memory(mut self, bytes: u64) -> ContainerSpec {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Set the seccomp profile.
    #[must_use]
    pub fn seccomp(mut self, profile: SeccompProfile) -> ContainerSpec {
        self.seccomp = profile;
        self
    }

    /// Set the AppArmor profile.
    #[must_use]
    pub fn apparmor(mut self, profile: MacProfile) -> ContainerSpec {
        self.apparmor = profile;
        self
    }

    /// Enable user-namespace remapping (`--userns-remap`).
    #[must_use]
    pub fn userns_remap(mut self, enabled: bool) -> ContainerSpec {
        self.userns_remap = enabled;
        self
    }

    /// Render the equivalent `docker run` command line (diagnostics; TORPEDO
    /// drives Docker through the CLI, §3.2).
    pub fn to_cli(&self) -> String {
        let mut cmd = format!("docker run --name {} --runtime {}", self.name, self.runtime);
        if !self.cpuset.is_empty() {
            let cores: Vec<String> = self.cpuset.iter().map(|c| c.to_string()).collect();
            cmd.push_str(&format!(" --cpuset-cpus {}", cores.join(",")));
        }
        if let Some(cpus) = self.cpus {
            cmd.push_str(&format!(" --cpus {cpus}"));
        }
        if let Some(mem) = self.memory_bytes {
            cmd.push_str(&format!(" --memory {mem}"));
        }
        cmd.push(' ');
        cmd.push_str(&self.image);
        cmd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_torpedo_defaults() {
        let spec = ContainerSpec::new("fuzz-1");
        assert_eq!(spec.runtime, "runc");
        assert!(spec.cpuset.is_empty());
        assert_eq!(spec.cpus, None);
        assert_eq!(spec.seccomp.name(), "unconfined");
    }

    #[test]
    fn builder_chains() {
        let spec = ContainerSpec::new("f")
            .runtime_name("runsc")
            .cpuset_cpus(&[2, 3])
            .cpus(1.5)
            .memory(1 << 30);
        assert_eq!(spec.runtime, "runsc");
        assert_eq!(spec.cpuset, vec![2, 3]);
        assert_eq!(spec.cpus, Some(1.5));
        assert_eq!(spec.memory_bytes, Some(1 << 30));
    }

    #[test]
    fn cli_rendering_includes_table_3_1_options() {
        let cli = ContainerSpec::new("f")
            .runtime_name("runsc")
            .cpuset_cpus(&[0, 1])
            .cpus(2.0)
            .to_cli();
        assert!(cli.contains("--runtime runsc"));
        assert!(cli.contains("--cpuset-cpus 0,1"));
        assert!(cli.contains("--cpus 2"));
        assert!(cli.starts_with("docker run"));
    }
}
