//! The sandboxed runtime: a model of gVisor/runsc (§2.3.2).
//!
//! gVisor interposes a userspace kernel ("the Sentry") between the container
//! and the host: syscalls are intercepted, re-implemented with a smaller
//! host syscall surface, and charged to the sandbox itself. The model
//! reproduces the four properties the evaluation observed (§4.4):
//!
//! 1. **Higher syscall overhead** → utilization numbers lower than runC
//!    (compare Tables A.4 and A.1).
//! 2. **No host work deferral** → none of the runC adversarial patterns
//!    reproduce.
//! 3. **No kcov** → fallback coverage only (§3.1.2).
//! 4. **Two `open(2)` bugs** → a flag-pattern crash (§A.2.2: flags
//!    `0x680002` on a libc path kill the container) and a multithreaded
//!    collision crash in collider mode.

use std::collections::HashSet;

use torpedo_kernel::errno::Errno;
use torpedo_kernel::kernel::Kernel;
use torpedo_kernel::syscalls::{
    self, fallback_signal, nr_of, ExecContext, ExecPolicy, SyscallOutcome, SyscallRequest,
};
use torpedo_kernel::time::Usecs;

use crate::spec::RuntimeKind;
use crate::{completed, ContainerCrash, ExecEnv, Runtime, RuntimeExec};

/// Syscalls the Sentry does not implement at all (subset of the real
/// compatibility gaps; `ENOSYS` to the caller).
const UNSUPPORTED: &[&str] = &[
    "rseq",
    "kcmp",
    "ptrace",
    "personality",
    "getitimer",
    "syncfs",
    "fallocate",
];

/// The `open(2)` flag bits whose combination crashes the Sentry (the paper's
/// recreated crash uses `flags = 0x680002`: `O_RDWR | O_DIRECT-ish
/// high bits`).
const CRASH_FLAG_MASK: u64 = 0x680000;

/// The gVisor runtime model.
#[derive(Debug, Clone)]
pub struct GVisor {
    unsupported: HashSet<&'static str>,
    /// Syscall interception overhead multiplier. The paper reports "gVisor
    /// introduces additional overhead on syscall execution and overall
    /// utilization numbers are lower"; ~2.2x matches published ptrace-mode
    /// microbenchmarks.
    overhead: f64,
    /// Whether the two seeded open(2) bugs are active (disable to model a
    /// fixed Sentry for ablations).
    bugs_enabled: bool,
}

impl GVisor {
    /// A Sentry with the evaluation-era bugs present.
    pub fn new() -> GVisor {
        GVisor {
            unsupported: UNSUPPORTED.iter().copied().collect(),
            overhead: 2.2,
            bugs_enabled: true,
        }
    }

    /// A Sentry with the open(2) bugs fixed (ablation / regression model).
    pub fn patched() -> GVisor {
        GVisor {
            bugs_enabled: false,
            ..GVisor::new()
        }
    }

    /// Whether `name` is implemented by the Sentry.
    pub fn supports(&self, name: &str) -> bool {
        !self.unsupported.contains(name)
    }

    fn enosys(&self, name: &str) -> SyscallOutcome {
        SyscallOutcome {
            retval: Errno::ENOSYS.as_retval(),
            errno: Some(Errno::ENOSYS),
            fatal_signal: None,
            user: Usecs(1),
            system: Usecs(3),
            blocked: Usecs::ZERO,
            coverage: vec![fallback_signal(
                nr_of(name).unwrap_or(u32::MAX),
                Some(Errno::ENOSYS),
            )],
            throttled: false,
        }
    }

    fn crash(&self, reason: &str, req: &SyscallRequest<'_>) -> RuntimeExec {
        RuntimeExec {
            outcome: SyscallOutcome {
                retval: Errno::EIO.as_retval(),
                errno: Some(Errno::EIO),
                fatal_signal: None,
                user: Usecs(2),
                system: Usecs(8),
                blocked: Usecs::ZERO,
                coverage: vec![fallback_signal(
                    nr_of(req.name).unwrap_or(u32::MAX),
                    Some(Errno::EIO),
                )],
                throttled: false,
            },
            crash: Some(ContainerCrash {
                reason: reason.to_string(),
                syscall: req.name.to_string(),
                args: req.args,
            }),
        }
    }
}

impl Default for GVisor {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime for GVisor {
    fn name(&self) -> &'static str {
        "runsc"
    }

    fn kind(&self) -> RuntimeKind {
        RuntimeKind::Sandboxed
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            host_deferrals: false,
            overhead: self.overhead,
            kcov_available: false,
        }
    }

    fn execute(
        &self,
        kernel: &mut Kernel,
        ctx: &ExecContext,
        req: SyscallRequest<'_>,
        env: ExecEnv,
    ) -> RuntimeExec {
        if !self.supports(req.name) {
            return completed(self.enosys(req.name));
        }
        if self.bugs_enabled && req.name == "open" {
            // Bug 1 (§A.2.2): a specific flag pattern on a resolvable path
            // panics the Sentry's overlay filesystem and kills the container.
            let flags = req.args[1];
            let path_resolves = req.paths[0].is_some_and(|p| kernel.vfs.lookup(p).is_some());
            if flags & CRASH_FLAG_MASK == CRASH_FLAG_MASK && path_resolves {
                return self.crash("sentry-panic-open-flags", &req);
            }
            // Bug 2 (§4.4.1): open racing other syscalls on sibling threads
            // hits an unsynchronized descriptor-table path in the Sentry.
            if env.collider && flags & 0x8000 != 0 {
                return self.crash("sentry-race-open-collider", &req);
            }
        }
        completed(syscalls::dispatch(kernel, ctx, req))
    }

    fn standing_overhead(&self) -> f64 {
        // The Sentry and its platform threads keep a few percent of a core
        // busy even between syscalls.
        0.03
    }

    fn startup_cost(&self, cold: bool) -> torpedo_kernel::Usecs {
        // Booting the sentry and its platform costs noticeably more than a
        // native runtime's setup-and-exit.
        let warm = torpedo_kernel::Usecs::from_millis(800);
        if cold {
            warm.scale(3.0)
        } else {
            warm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_kernel::cgroup::CgroupTree;
    use torpedo_kernel::process::ProcessKind;

    fn ctx(kernel: &mut Kernel) -> ExecContext {
        let cg = kernel
            .cgroups
            .create(CgroupTree::ROOT, "docker/g", Default::default())
            .unwrap();
        let pid = kernel.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "g".into(),
            },
            cg,
        );
        ExecContext {
            pid,
            cgroup: cg,
            core: 0,
            cpuset: vec![0],
            policy: GVisor::new().policy(),
        }
    }

    #[test]
    fn unsupported_syscalls_are_enosys() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::new();
        for name in ["rseq", "kcmp", "fallocate"] {
            let exec = g.execute(
                &mut kernel,
                &ctx,
                SyscallRequest::new(name, [0; 6]),
                ExecEnv::default(),
            );
            assert_eq!(exec.outcome.errno, Some(Errno::ENOSYS), "{name}");
            assert!(exec.crash.is_none());
        }
    }

    #[test]
    fn open_flag_pattern_crashes_container() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::new();
        // The paper's exact reproducer: open(libc path, 0x680002, 0x20).
        let req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
            .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
        let exec = g.execute(&mut kernel, &ctx, req, ExecEnv::default());
        let crash = exec.crash.expect("container must crash");
        assert_eq!(crash.reason, "sentry-panic-open-flags");
        assert_eq!(crash.syscall, "open");
    }

    #[test]
    fn crash_needs_resolvable_path() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::new();
        let req =
            SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0]).with_path(0, "/no/such/path");
        let exec = g.execute(&mut kernel, &ctx, req, ExecEnv::default());
        assert!(exec.crash.is_none());
    }

    #[test]
    fn collider_open_race_crashes() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::new();
        let req = SyscallRequest::new("open", [0, 0x8000, 0, 0, 0, 0]).with_path(0, "/etc/passwd");
        let calm = g.execute(&mut kernel, &ctx, req, ExecEnv { collider: false });
        assert!(calm.crash.is_none());
        let racy = g.execute(&mut kernel, &ctx, req, ExecEnv { collider: true });
        assert_eq!(racy.crash.unwrap().reason, "sentry-race-open-collider");
    }

    #[test]
    fn patched_sentry_does_not_crash() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::patched();
        let req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
            .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
        let exec = g.execute(&mut kernel, &ctx, req, ExecEnv::default());
        assert!(exec.crash.is_none());
    }

    #[test]
    fn no_host_deferrals_under_gvisor() {
        let mut kernel = Kernel::with_defaults();
        let ctx = ctx(&mut kernel);
        kernel.begin_round(Usecs::from_secs(5));
        let g = GVisor::new();
        // The runC modprobe storm: under the Sentry netstack the family is
        // simply unsupported, no host module loading happens.
        let exec = g.execute(
            &mut kernel,
            &ctx,
            SyscallRequest::new("socket", [9, 3, 0, 0, 0, 0]),
            ExecEnv::default(),
        );
        assert_eq!(exec.outcome.errno, Some(Errno::EAFNOSUPPORT));
        let out = kernel.finish_round(&[0]);
        assert!(out.deferrals.is_empty(), "no OOB work under gVisor");
        assert_eq!(kernel.net.modprobe_exec_count, 0);
    }

    #[test]
    fn overhead_is_higher_than_runc() {
        let g = GVisor::new();
        assert!(g.policy().overhead > 1.5);
        assert!(!g.supports_kcov());
        assert!(g.standing_overhead() > 0.0);
    }
}
