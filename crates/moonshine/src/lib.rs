//! `torpedo-moonshine`: a deterministic generator of Moonshine-style seeds.
//!
//! The paper's evaluation (§4.1.1) repurposes the Moonshine corpus: seeds
//! distilled from real program traces, each "a sequence of related syscalls
//! designed to cover a particular kernel interface", with call patterns
//! that meaningfully share resources. The real corpus is not
//! redistributable, so this crate synthesizes the same *shape*: per-
//! interface trace templates with resource flow between calls, parameter
//! variation drawn from a seeded RNG, plus the verbatim programs from the
//! paper's Appendix A.
//!
//! # Examples
//! ```
//! use torpedo_moonshine::generate_corpus;
//! use torpedo_prog::{build_table, deserialize};
//!
//! let table = build_table();
//! let texts = generate_corpus(200, 7);
//! assert_eq!(texts.len(), 200);
//! for text in &texts {
//!     deserialize(text, &table).unwrap().validate(&table).unwrap();
//! }
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub mod appendix;

pub use appendix::APPENDIX_SEEDS;

/// Kernel-interface families the distilled traces cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFamily {
    /// creat/write/read/lseek file I/O loops.
    FileIo,
    /// Socket setup and messaging.
    Socket,
    /// mmap/mprotect/munmap memory juggling.
    Memory,
    /// Signal handler installation and delivery.
    Signal,
    /// Extended-attribute get/set cycles (the ltp getxattr01 shape).
    Xattr,
    /// inotify + proc-file polling (the paper's program 1 in A.1.1).
    Inotify,
    /// Process identity and limits probing.
    Process,
    /// Sync-heavy writeback traces.
    Writeback,
    /// Event-loop style traces (epoll/eventfd/pipe plumbing).
    EventLoop,
    /// Resource-limit probing traces (getrlimit/setrlimit/fallocate).
    Rlimit,
}

impl TraceFamily {
    /// All families, in generation rotation order.
    pub const ALL: [TraceFamily; 10] = [
        TraceFamily::FileIo,
        TraceFamily::Socket,
        TraceFamily::Memory,
        TraceFamily::Signal,
        TraceFamily::Xattr,
        TraceFamily::Inotify,
        TraceFamily::Process,
        TraceFamily::Writeback,
        TraceFamily::EventLoop,
        TraceFamily::Rlimit,
    ];
}

/// Generate one trace of `family`, varied by `rng`.
pub fn generate_trace(family: TraceFamily, rng: &mut StdRng) -> String {
    match family {
        TraceFamily::FileIo => {
            // open(2) is the most common call in the distilled traces
            // (§4.4.2 notes its "relative prevalence" in the Moonshine
            // seeds); flags vary, including O_CREAT and large-file bits.
            let flags = [0x42u64, 0x8042, 0x442, 0x242]
                .choose(rng)
                .copied()
                .unwrap();
            let mode = [0x1a4u64, 0x124, 0o600].choose(rng).copied().unwrap();
            let len = [0x40u64, 0x100, 0x1000, 0x8000]
                .choose(rng)
                .copied()
                .unwrap();
            let file = rng.gen_range(0..2);
            format!(
                "r0 = open(&'workfile-{file}', {flags:#x}, {mode:#x})\n\
                 write(r0, 0x7f0000000000, {len:#x})\n\
                 lseek(r0, 0x0, 0x0)\n\
                 read(r0, 0x7f0000001000, {len:#x})\n\
                 close(r0)\n"
            )
        }
        TraceFamily::Socket => {
            let family_nr = [1u64, 2, 10, 16, 9, 5].choose(rng).copied().unwrap();
            let sock_type = [1u64, 2, 3].choose(rng).copied().unwrap();
            let proto = if family_nr == 16 {
                [0u64, 9].choose(rng).copied().unwrap()
            } else {
                0
            };
            let len = [0x24u64, 0x40, 0x200].choose(rng).copied().unwrap();
            format!(
                "r0 = socket({family_nr:#x}, {sock_type:#x}, {proto:#x})\n\
                 socketpair(0x1, 0x1, 0x0, 0x7f0000000100)\n\
                 sendto(r0, 0x7f0000000000, {len:#x}, 0x0, 0x0, 0xc)\n\
                 shutdown(r0, 0x2)\n"
            )
        }
        TraceFamily::Memory => {
            let len = [0x1000u64, 0x4000, 0x100000].choose(rng).copied().unwrap();
            format!(
                "mmap(0x7f0000000000, {len:#x}, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n\
                 mprotect(0x7f0000000000, {len:#x}, 0x1)\n\
                 madvise(0x7f0000000000, {len:#x}, 0x4)\n\
                 munmap(0x7f0000000000, {len:#x})\n"
            )
        }
        TraceFamily::Signal => {
            let sig = [0xau64, 0xe, 0x11, 0x1].choose(rng).copied().unwrap();
            format!(
                "rt_sigaction({sig:#x}, 0x7f0000000000, 0x0)\n\
                 alarm(0x4)\n\
                 r2 = getpid()\n\
                 kill(r2, 0x11)\n"
            )
        }
        TraceFamily::Xattr => {
            let size = [0x15u64, 0x40, 0x100].choose(rng).copied().unwrap();
            format!(
                "creat(&'getxattr01testfile', 0x1a4)\n\
                 setxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f0000000000, {size:#x}, 0x1)\n\
                 getxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f0000000100, 0x0)\n\
                 getxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f0000000200, {size:#x})\n"
            )
        }
        TraceFamily::Inotify => {
            let offset = [0xfffffffffffffffbu64, 0x0, 0x10]
                .choose(rng)
                .copied()
                .unwrap();
            format!(
                "r0 = inotify_init()\n\
                 ioctl(r0, 0x80087601, 0x7f0000000100)\n\
                 alarm(0x4)\n\
                 r3 = open(&'/proc/sys/fs/mqueue/msg_max', 0x2, 0x0)\n\
                 lseek(r3, {offset:#x}, 0x1)\n\
                 lseek(r3, 0x0, 0x0)\n\
                 read(r3, 0x7f00000000e5, 0x7)\n\
                 write(r3, 0x7f00000000ec, 0x6)\n"
            )
        }
        TraceFamily::Process => {
            let resource = [0x3u64, 0x7, 0x3e8].choose(rng).copied().unwrap();
            format!(
                "mmap(0x7f0000000000, 0x4000, 0x3, 0x20010, 0xffffffffffffffff, 0x0)\n\
                 getrlimit({resource:#x}, 0x7f0000000000)\n\
                 r2 = getpid()\n\
                 kcmp(0x1586, r2, 0x9, 0x0, 0x0)\n\
                 getuid()\n"
            )
        }
        TraceFamily::EventLoop => {
            let initval = [0u64, 1, 8].choose(rng).copied().unwrap();
            format!(
                "r0 = epoll_create1(0x0)\n\
                 r1 = eventfd2({initval:#x}, 0x0)\n\
                 epoll_ctl(r0, 0x1, r1, 0x7f0000000000)\n\
                 r3 = pipe(0x7f0000000100)\n\
                 epoll_ctl(r0, 0x1, r3, 0x7f0000000200)\n\
                 close(r1)\n"
            )
        }
        TraceFamily::Rlimit => {
            let limit = [0x1000u64, 0x100000, 0x40000000]
                .choose(rng)
                .copied()
                .unwrap();
            let len = [0x800u64, 0x4000, 0x200000].choose(rng).copied().unwrap();
            format!(
                "getrlimit(0x1, 0x7f0000000000)\n\
                 setrlimit(0x1, {limit:#x})\n\
                 r2 = creat(&'workfile-0', 0x1a4)\n\
                 fallocate(r2, 0x0, 0x0, {len:#x})\n\
                 ftruncate(r2, {len:#x})\n"
            )
        }
        TraceFamily::Writeback => {
            let len = [0x2000u64, 0x10000, 0x80000].choose(rng).copied().unwrap();
            let tail = if rng.gen_bool(0.5) {
                "fsync(r0)"
            } else {
                "sync()"
            };
            format!(
                "r0 = creat(&'workfile-1', 0x1a4)\n\
                 write(r0, 0x7f0000000000, {len:#x})\n\
                 write(r0, 0x7f0000010000, {len:#x})\n\
                 {tail}\n"
            )
        }
    }
}

/// Generate a corpus of `count` trace-distilled-style seeds, reproducible
/// from `seed`. Families rotate so coverage is spread evenly; the Appendix
/// A programs are prepended verbatim.
pub fn generate_corpus(count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<String> = Vec::with_capacity(count);
    for text in APPENDIX_SEEDS.iter().take(count) {
        out.push((*text).to_string());
    }
    let mut family_idx = 0usize;
    while out.len() < count {
        let family = TraceFamily::ALL[family_idx % TraceFamily::ALL.len()];
        family_idx += 1;
        out.push(generate_trace(family, &mut rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use torpedo_prog::{build_table, deserialize};

    #[test]
    fn corpus_is_valid_and_reproducible() {
        let table = build_table();
        let a = generate_corpus(120, 42);
        let b = generate_corpus(120, 42);
        assert_eq!(a, b, "same seed, same corpus");
        for (i, text) in a.iter().enumerate() {
            let prog = deserialize(text, &table)
                .unwrap_or_else(|e| panic!("seed {i} failed to parse: {e}\n{text}"));
            prog.validate(&table)
                .unwrap_or_else(|e| panic!("seed {i} invalid: {e}"));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(50, 1);
        let b = generate_corpus(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_family_generates_valid_traces() {
        let table = build_table();
        let mut rng = StdRng::seed_from_u64(9);
        for family in TraceFamily::ALL {
            for _ in 0..20 {
                let text = generate_trace(family, &mut rng);
                let prog = deserialize(&text, &table)
                    .unwrap_or_else(|e| panic!("{family:?}: {e}\n{text}"));
                prog.validate(&table).unwrap();
                assert!(prog.len() >= 3, "{family:?} trace too short");
            }
        }
    }

    #[test]
    fn appendix_seeds_lead_the_corpus() {
        let corpus = generate_corpus(200, 0);
        assert_eq!(corpus[0], APPENDIX_SEEDS[0]);
        assert!(corpus.len() == 200);
    }

    #[test]
    fn traces_share_resources() {
        // Resource flow (rN references) is the Moonshine property the paper
        // relies on; most families must exhibit it.
        let mut rng = StdRng::seed_from_u64(3);
        let with_refs = TraceFamily::ALL
            .iter()
            .filter(|f| generate_trace(**f, &mut rng).contains("r0"))
            .count();
        assert!(with_refs >= 6, "only {with_refs} families flow resources");
    }
}
