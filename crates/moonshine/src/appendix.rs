//! The verbatim seed programs from the paper's Appendix A, transcribed
//! into the serialization format (pointer arguments become arena offsets;
//! path strings become `&'…'` payloads).

/// Appendix A programs, in order of appearance.
pub const APPENDIX_SEEDS: &[&str] = &[
    // A.1.1 program 0: mmap + creat under mntpoint.
    "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n\
     creat(&'mntpoint/tmp', 0x124)\n",
    // A.1.1 program 1: inotify + mqueue msg_max read/write cycle + DRM ioctl.
    "r0 = inotify_init()\n\
     ioctl(r0, 0x80087601, 0x7f0000000100)\n\
     alarm(0x4)\n\
     r3 = open(&'/proc/sys/fs/mqueue/msg_max', 0x2, 0x0)\n\
     lseek(r3, 0xfffffffffffffffb, 0x1)\n\
     lseek(r3, 0x0, 0x0)\n\
     read(r3, 0x7f00000000e5, 0x7)\n\
     write(r3, 0x7f00000000ec, 0x6)\n\
     ioctl(r3, 0xc02064a5, 0x7f00000000c0)\n",
    // A.1.1 program 2: mmap + getrlimit with an invalid resource.
    "mmap(0x7f0000000000, 0x4000, 0x3, 0x20010, 0xffffffffffffffff, 0x0)\n\
     getrlimit(0x3e8, 0x7f0000000000)\n",
    // A.1.2 program 0: bare sync.
    "sync()\n",
    // A.1.2 program 1: getpid + kcmp with a bogus first pid.
    "r0 = getpid()\n\
     kcmp(0x1586, r0, 0x9, 0x0, 0x0)\n",
    // A.1.2 program 2: mmap + the test_eloop readlink chain.
    "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n\
     readlink(&'./test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop/test_eloop', 0x7f00000001db, 0x0)\n",
    // A.1.3 program 1: the netlink audit record sender.
    "r0 = socket(0x10, 0x3, 0x9)\n\
     socketpair(0x4, 0x3, 0x7, 0x7f0000000100)\n\
     sendto(r0, 0x7f0000000000, 0x24, 0x0, 0x0, 0xc)\n",
    // A.2.1 program 0: chmod on testdir.
    "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n\
     chmod(&'testdir_1', 0x1ff)\n",
    // A.2.1 program 1: setuid to the nobody-ish uid.
    "setuid(0xfffe)\n",
    // A.2.1 program 2: the getxattr01 ltp trace.
    "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n\
     creat(&'getxattr01testfile', 0x1a4)\n\
     setxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f0000000033, 0x15, 0x1)\n\
     getxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f000000006a, 0x0)\n\
     getxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f000000008a, 0x0)\n\
     getxattr(&'getxattr01testfile', @'system.posix_acl_access', 0x7f00000000aa, 0x15)\n",
    // A.2.2: the gVisor-crashing open (original syzkaller trace).
    "open(&'/lib/x86_64-Linux-gnu/libc.so.6', 0x680002, 0x20)\n",
];

#[cfg(test)]
mod tests {
    use torpedo_prog::{build_table, deserialize};

    #[test]
    fn appendix_seeds_parse_and_validate() {
        let table = build_table();
        for (i, text) in super::APPENDIX_SEEDS.iter().enumerate() {
            let prog = deserialize(text, &table)
                .unwrap_or_else(|e| panic!("appendix seed {i}: {e}\n{text}"));
            prog.validate(&table)
                .unwrap_or_else(|e| panic!("appendix seed {i} invalid: {e}"));
        }
    }

    #[test]
    fn crash_seed_is_the_paper_reproducer() {
        let last = super::APPENDIX_SEEDS.last().unwrap();
        assert!(last.contains("0x680002"));
        assert!(last.contains("libc.so.6"));
    }
}
