//! Per-syscall semantic tests: every handler family, its success path, its
//! error paths, and its side effects on kernel state.

use torpedo_kernel::cgroup::{CgroupLimits, CgroupTree};
use torpedo_kernel::process::ProcessKind;
use torpedo_kernel::signal::Signal;
use torpedo_kernel::syscalls::{dispatch, ExecContext, ExecPolicy, SyscallOutcome};
use torpedo_kernel::{Errno, Kernel, SyscallRequest, Usecs};

struct Host {
    kernel: Kernel,
    ctx: ExecContext,
}

impl Host {
    fn new() -> Host {
        let mut kernel = Kernel::with_defaults();
        let cg = kernel
            .cgroups
            .create(
                CgroupTree::ROOT,
                "docker/test",
                CgroupLimits {
                    cpuset: Some(vec![0]),
                    ..CgroupLimits::default()
                },
            )
            .unwrap();
        let pid = kernel.procs.spawn(
            "syz-executor-test",
            ProcessKind::Executor {
                container: "test".into(),
            },
            cg,
        );
        kernel.begin_round(Usecs::from_secs(10));
        Host {
            kernel,
            ctx: ExecContext {
                pid,
                cgroup: cg,
                core: 0,
                cpuset: vec![0],
                policy: ExecPolicy::default(),
            },
        }
    }

    fn call(&mut self, name: &str, args: [u64; 6]) -> SyscallOutcome {
        dispatch(&mut self.kernel, &self.ctx, SyscallRequest::new(name, args))
    }

    fn call_path(&mut self, name: &str, args: [u64; 6], path: &str) -> SyscallOutcome {
        dispatch(
            &mut self.kernel,
            &self.ctx,
            SyscallRequest::new(name, args).with_path(0, path),
        )
    }
}

// ---------------------------------------------------------------- fs

#[test]
fn open_close_lifecycle() {
    let mut h = Host::new();
    let fd = h
        .call_path("open", [0, 0, 0, 0, 0, 0], "/etc/passwd")
        .retval;
    assert!(fd >= 3, "got {fd}");
    assert_eq!(h.call("close", [fd as u64, 0, 0, 0, 0, 0]).retval, 0);
    assert_eq!(
        h.call("close", [fd as u64, 0, 0, 0, 0, 0]).errno,
        Some(Errno::EBADF)
    );
}

#[test]
fn open_missing_without_creat_is_enoent() {
    let mut h = Host::new();
    let out = h.call_path("open", [0, 0, 0, 0, 0, 0], "/nope");
    assert_eq!(out.errno, Some(Errno::ENOENT));
    // With O_CREAT (0x40) the file is created.
    let out = h.call_path("open", [0, 0x40, 0o600, 0, 0, 0], "/nope");
    assert!(out.retval >= 3);
    assert!(h.kernel.vfs.lookup("/nope").is_some());
}

#[test]
fn open_without_path_payload_is_efault() {
    let mut h = Host::new();
    assert_eq!(h.call("open", [0; 6]).errno, Some(Errno::EFAULT));
}

#[test]
fn write_dirties_page_cache_and_charges_blkio() {
    let mut h = Host::new();
    let before = h.kernel.vfs.dirty_bytes();
    let fd = h.call_path("creat", [0, 0o644, 0, 0, 0, 0], "wfile").retval as u64;
    let out = h.call("write", [fd, 0x7f00_0000_0000, 0x1000, 0, 0, 0]);
    assert_eq!(out.retval, 0x1000);
    assert!(h.kernel.vfs.dirty_bytes() > before);
    let cg = h.kernel.cgroups.get(h.ctx.cgroup).unwrap();
    assert!(cg.charged_io_bytes() >= 0x1000);
}

#[test]
fn write_past_rlimit_fsize_delivers_sigxfsz() {
    let mut h = Host::new();
    h.kernel
        .procs
        .get_mut(h.ctx.pid)
        .unwrap()
        .rlimits_mut()
        .fsize = 4096;
    let fd = h.call_path("creat", [0, 0o644, 0, 0, 0, 0], "small").retval as u64;
    let out = h.call("write", [fd, 0, 0x10000, 0, 0, 0]);
    assert_eq!(out.fatal_signal, Some(Signal::SIGXFSZ));
    assert!(!h.kernel.procs.get(h.ctx.pid).unwrap().alive());
}

#[test]
fn lseek_whence_validation() {
    let mut h = Host::new();
    let fd = h
        .call_path("creat", [0, 0o644, 0, 0, 0, 0], "seekme")
        .retval as u64;
    assert_eq!(h.call("lseek", [fd, 100, 0, 0, 0, 0]).retval, 100);
    assert_eq!(
        h.call("lseek", [fd, 0, 9, 0, 0, 0]).errno,
        Some(Errno::EINVAL)
    );
    assert_eq!(
        h.call("lseek", [999, 0, 0, 0, 0, 0]).errno,
        Some(Errno::EBADF)
    );
}

#[test]
fn readlink_eloop_chain() {
    let mut h = Host::new();
    let deep = "./".to_string() + &"test_eloop/".repeat(43);
    let out = h.call_path("readlink", [0, 0, 0, 0, 0, 0], &deep);
    assert_eq!(out.errno, Some(Errno::ELOOP));
    // A regular file is EINVAL (not a symlink).
    let out = h.call_path("readlink", [0, 0, 0, 0, 0, 0], "/etc/passwd");
    assert_eq!(out.errno, Some(Errno::EINVAL));
}

#[test]
fn xattr_set_get_roundtrip_and_erange() {
    let mut h = Host::new();
    h.call_path("creat", [0, 0o644, 0, 0, 0, 0], "xfile");
    let set = dispatch(
        &mut h.kernel,
        &h.ctx,
        SyscallRequest::new("setxattr", [0, 0, 0, 0x15, 1, 0])
            .with_path(0, "xfile")
            .with_path(1, "user.test"),
    );
    assert_eq!(set.retval, 0);
    // size 0 → size query.
    let q = dispatch(
        &mut h.kernel,
        &h.ctx,
        SyscallRequest::new("getxattr", [0, 0, 0, 0, 0, 0])
            .with_path(0, "xfile")
            .with_path(1, "user.test"),
    );
    assert_eq!(q.retval, 0x15);
    // too-small buffer → ERANGE.
    let small = dispatch(
        &mut h.kernel,
        &h.ctx,
        SyscallRequest::new("getxattr", [0, 0, 0, 4, 0, 0])
            .with_path(0, "xfile")
            .with_path(1, "user.test"),
    );
    assert_eq!(small.errno, Some(Errno::ERANGE));
    // absent attribute → ENODATA.
    let missing = dispatch(
        &mut h.kernel,
        &h.ctx,
        SyscallRequest::new("getxattr", [0, 0, 0, 0, 0, 0])
            .with_path(0, "xfile")
            .with_path(1, "user.other"),
    );
    assert_eq!(missing.errno, Some(Errno::ENODATA));
}

#[test]
fn inotify_and_ioctl() {
    let mut h = Host::new();
    let ifd = h.call("inotify_init", [0; 6]).retval as u64;
    assert!(ifd >= 3);
    let watch = dispatch(
        &mut h.kernel,
        &h.ctx,
        SyscallRequest::new("inotify_add_watch", [ifd, 0, 0xfff, 0, 0, 0])
            .with_path(1, "/etc/passwd"),
    );
    assert_eq!(watch.retval, 1);
    // FS_IOC_GETVERSION on a file fd succeeds; on inotify it is EINVAL.
    let file = h
        .call_path("open", [0, 0, 0, 0, 0, 0], "/etc/passwd")
        .retval as u64;
    assert_eq!(h.call("ioctl", [file, 0x8008_7601, 0, 0, 0, 0]).retval, 0);
    assert_eq!(
        h.call("ioctl", [ifd, 0x8008_7601, 0, 0, 0, 0]).errno,
        Some(Errno::EINVAL)
    );
}

#[test]
fn mkdir_eexist_and_unlink_enoent() {
    let mut h = Host::new();
    assert_eq!(
        h.call_path("mkdir", [0, 0o755, 0, 0, 0, 0], "newdir")
            .retval,
        0
    );
    assert_eq!(
        h.call_path("mkdir", [0, 0o755, 0, 0, 0, 0], "newdir").errno,
        Some(Errno::EEXIST)
    );
    assert_eq!(h.call_path("unlink", [0; 6], "newdir").retval, 0);
    assert_eq!(
        h.call_path("unlink", [0; 6], "reallynotthere").errno,
        Some(Errno::ENOENT)
    );
}

#[test]
fn dup_clones_the_descriptor() {
    let mut h = Host::new();
    let fd = h.call_path("creat", [0, 0o644, 0, 0, 0, 0], "duped").retval as u64;
    let dup = h.call("dup", [fd, 0, 0, 0, 0, 0]).retval;
    assert!(dup > fd as i64);
    assert_eq!(
        h.call("dup", [4242, 0, 0, 0, 0, 0]).errno,
        Some(Errno::EBADF)
    );
}

// ---------------------------------------------------------------- mm

#[test]
fn mmap_charges_and_munmap_releases_memory() {
    let mut h = Host::new();
    let before = h.kernel.cgroups.get(h.ctx.cgroup).unwrap().charged_memory();
    assert!(h.call("mmap", [0, 1 << 20, 3, 0x32, u64::MAX, 0]).retval > 0);
    let mid = h.kernel.cgroups.get(h.ctx.cgroup).unwrap().charged_memory();
    assert_eq!(mid - before, 1 << 20);
    h.call("munmap", [0, 1 << 20, 0, 0, 0, 0]);
    assert_eq!(
        h.kernel.cgroups.get(h.ctx.cgroup).unwrap().charged_memory(),
        before
    );
}

#[test]
fn mmap_zero_length_is_einval_and_limit_is_enomem() {
    let mut h = Host::new();
    assert_eq!(h.call("mmap", [0; 6]).errno, Some(Errno::EINVAL));
    // Create a memory-limited container.
    let cg = h
        .kernel
        .cgroups
        .create(
            CgroupTree::ROOT,
            "docker/tiny",
            CgroupLimits {
                memory_bytes: Some(1 << 20),
                ..CgroupLimits::default()
            },
        )
        .unwrap();
    let pid = h.kernel.procs.spawn(
        "tiny",
        ProcessKind::Executor {
            container: "tiny".into(),
        },
        cg,
    );
    let ctx = ExecContext {
        pid,
        cgroup: cg,
        core: 1,
        cpuset: vec![1],
        policy: ExecPolicy::default(),
    };
    let out = dispatch(
        &mut h.kernel,
        &ctx,
        SyscallRequest::new("mmap", [0, 4 << 20, 3, 0x32, u64::MAX, 0]),
    );
    assert_eq!(out.errno, Some(Errno::ENOMEM));
}

#[test]
fn mprotect_alignment() {
    let mut h = Host::new();
    assert_eq!(h.call("mprotect", [0x1000, 0x1000, 1, 0, 0, 0]).retval, 0);
    assert_eq!(
        h.call("mprotect", [0x1001, 0x1000, 1, 0, 0, 0]).errno,
        Some(Errno::EINVAL)
    );
}

// ---------------------------------------------------------------- proc

#[test]
fn identity_calls_are_cheap_and_infallible() {
    let mut h = Host::new();
    for name in [
        "getpid", "getuid", "geteuid", "gettid", "getppid", "uname", "sysinfo", "times", "getcpu",
    ] {
        let out = h.call(name, [0; 6]);
        assert!(out.errno.is_none(), "{name}: {:?}", out.errno);
        assert!(out.user + out.system < Usecs(20), "{name} too expensive");
    }
}

#[test]
fn kill_self_with_dumping_signal_spawns_helper() {
    let mut h = Host::new();
    let pid = h.ctx.pid.0 as u64;
    let out = h.call("kill", [pid, 11, 0, 0, 0, 0]); // SIGSEGV
    assert_eq!(out.fatal_signal, Some(Signal::SIGSEGV));
    let round = h.kernel.finish_round(&[0]);
    assert!(round.deferrals.iter().any(|e| matches!(
        e.channel,
        torpedo_kernel::DeferralChannel::UserModeHelper(_)
    )));
}

#[test]
fn kill_ignored_signal_is_harmless() {
    let mut h = Host::new();
    let pid = h.ctx.pid.0 as u64;
    let out = h.call("kill", [pid, 17, 0, 0, 0, 0]); // SIGCHLD
    assert_eq!(out.fatal_signal, None);
    assert!(h.kernel.procs.get(h.ctx.pid).unwrap().alive());
}

#[test]
fn kill_other_processes_is_denied_or_esrch() {
    let mut h = Host::new();
    let dockerd = h.kernel.boot.dockerd.0 as u64;
    assert_eq!(
        h.call("kill", [dockerd, 9, 0, 0, 0, 0]).errno,
        Some(Errno::EPERM)
    );
    assert_eq!(
        h.call("kill", [99999, 9, 0, 0, 0, 0]).errno,
        Some(Errno::ESRCH)
    );
}

#[test]
fn rseq_valid_vs_invalid() {
    let mut h = Host::new();
    // Aligned pointer, flags 0: fine.
    let ok = h.call("rseq", [0x7f00_0000_0000, 0x20, 0, 0, 0, 0]);
    assert_eq!(ok.fatal_signal, None);
    // Misaligned: SIGSEGV.
    let h2 = &mut Host::new();
    let bad = h2.call("rseq", [0x7f00_0000_0001, 0x20, 0, 0, 0, 0]);
    assert_eq!(bad.fatal_signal, Some(Signal::SIGSEGV));
}

#[test]
fn setrlimit_fsize_has_a_floor() {
    let mut h = Host::new();
    h.call("setrlimit", [1, 7, 0, 0, 0, 0]);
    assert_eq!(h.kernel.procs.get(h.ctx.pid).unwrap().rlimits().fsize, 4096);
}

#[test]
fn kcmp_validates_pids_and_type() {
    let mut h = Host::new();
    let me = h.ctx.pid.0 as u64;
    assert_eq!(h.call("kcmp", [me, me, 0, 0, 0, 0]).retval, 0);
    assert_eq!(
        h.call("kcmp", [0x1586, me, 5, 0, 0, 0]).errno,
        Some(Errno::ESRCH)
    );
    assert_eq!(
        h.call("kcmp", [me, me, 99, 0, 0, 0]).errno,
        Some(Errno::EINVAL)
    );
}

#[test]
fn setuid_triggers_audit_work() {
    let mut h = Host::new();
    h.call("setuid", [0xfffe, 0, 0, 0, 0, 0]);
    let kauditd = h.kernel.boot.kauditd;
    assert!(h.kernel.procs.get(kauditd).unwrap().round_cpu() > Usecs::ZERO);
}

// ---------------------------------------------------------------- net

#[test]
fn socketpair_allocates_two_fds() {
    let mut h = Host::new();
    let before = h.kernel.fd_table(h.ctx.pid).len();
    assert!(h.call("socketpair", [1, 1, 0, 0, 0, 0]).retval >= 3);
    assert_eq!(h.kernel.fd_table(h.ctx.pid).len(), before + 2);
}

#[test]
fn sendto_on_non_socket_fd() {
    let mut h = Host::new();
    let file = h
        .call_path("creat", [0, 0o644, 0, 0, 0, 0], "notasock")
        .retval as u64;
    // Linux: write-like behaviour on some fds; our model returns short ok.
    let out = h.call("sendto", [file, 0, 64, 0, 0, 0]);
    assert!(out.retval >= 0);
    assert_eq!(
        h.call("sendto", [777, 0, 64, 0, 0, 0]).errno,
        Some(Errno::EBADF)
    );
}

#[test]
fn connect_is_refused_and_poll_times_out() {
    let mut h = Host::new();
    let sock = h.call("socket", [2, 1, 0, 0, 0, 0]).retval as u64;
    assert_eq!(
        h.call("connect", [sock, 0, 16, 0, 0, 0]).errno,
        Some(Errno::ECONNREFUSED)
    );
    let out = h.call("poll", [0, 1, 100, 0, 0, 0]);
    assert_eq!(out.retval, 0);
    assert_eq!(out.blocked, Usecs::from_millis(100));
}

#[test]
fn pause_blocks_approximately_forever() {
    let mut h = Host::new();
    let out = h.call("pause", [0; 6]);
    assert!(out.blocked >= Usecs::from_secs(3600));
}

#[test]
fn unknown_name_and_throttled_cgroup() {
    let mut h = Host::new();
    assert_eq!(h.call("not_a_syscall", [0; 6]).errno, Some(Errno::ENOSYS));
    // Exhaust quota by direct charge; next call is throttled.
    let quota_cg = h
        .kernel
        .cgroups
        .create(
            CgroupTree::ROOT,
            "docker/capped",
            CgroupLimits {
                cpu_quota_cores: Some(0.5),
                ..CgroupLimits::default()
            },
        )
        .unwrap();
    h.kernel.cgroups.charge_cpu(quota_cg, Usecs::from_secs(100));
    let ctx = ExecContext {
        cgroup: quota_cg,
        ..h.ctx.clone()
    };
    let out = dispatch(&mut h.kernel, &ctx, SyscallRequest::new("getpid", [0; 6]));
    assert!(out.throttled);
}

#[test]
fn coverage_signals_differ_between_success_and_error() {
    let mut h = Host::new();
    let ok = h.call_path("open", [0, 0, 0, 0, 0, 0], "/etc/passwd");
    let err = h.call_path("open", [0, 0, 0, 0, 0, 0], "/missing");
    assert_ne!(ok.coverage, err.coverage);
}

#[test]
fn fork_and_exit_lifecycle() {
    let mut h = Host::new();
    assert!(h.call("fork", [0; 6]).retval > 0);
    let out = h.call("exit_group", [0; 6]);
    assert_eq!(out.fatal_signal, None, "exit is not a signal death");
    assert!(!h.kernel.procs.get(h.ctx.pid).unwrap().alive());
    // No coredump from a graceful exit.
    let round = h.kernel.finish_round(&[0]);
    assert!(round.deferrals.is_empty());
}
