//! Error numbers returned by the simulated syscall interface.
//!
//! Only the errnos that the TORPEDO evaluation actually exercises are
//! modelled, with the same numeric values as Linux/x86-64 so that the
//! SYZKALLER-style fallback coverage signal (`syscall_nr XOR errno`) produces
//! realistic values. See Table 4.2 of the paper: the `socket(2)` OOB workload
//! manifests for errnos 93, 94 and 97.

/// A subset of Linux error numbers, with Linux/x86-64 numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// Resource temporarily unavailable.
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files.
    EMFILE = 24,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Broken pipe.
    EPIPE = 32,
    /// Numerical result out of range.
    ERANGE = 34,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// Function not implemented.
    ENOSYS = 38,
    /// Too many levels of symbolic links.
    ELOOP = 40,
    /// No data available.
    ENODATA = 61,
    /// File too large.
    EFBIG = 27,
    /// Protocol not supported.
    EPROTONOSUPPORT = 93,
    /// Socket type not supported.
    ESOCKTNOSUPPORT = 94,
    /// Operation not supported.
    EOPNOTSUPP = 95,
    /// Address family not supported by protocol.
    EAFNOSUPPORT = 97,
    /// Connection refused.
    ECONNREFUSED = 111,
    /// Operation not possible due to RF-kill (used as a catch-all oddball).
    ERFKILL = 132,
}

impl Errno {
    /// The numeric value of this errno, identical to Linux/x86-64.
    pub fn as_raw(self) -> u16 {
        self as u16
    }

    /// The value a syscall returns in `rax` when failing with this errno.
    pub fn as_retval(self) -> i64 {
        -(self as u16 as i64)
    }

    /// The conventional upper-case symbol, e.g. `"ENOENT"`.
    pub fn symbol(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::EMFILE => "EMFILE",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EPIPE => "EPIPE",
            Errno::ERANGE => "ERANGE",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOSYS => "ENOSYS",
            Errno::ELOOP => "ELOOP",
            Errno::ENODATA => "ENODATA",
            Errno::EFBIG => "EFBIG",
            Errno::EPROTONOSUPPORT => "EPROTONOSUPPORT",
            Errno::ESOCKTNOSUPPORT => "ESOCKTNOSUPPORT",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::EAFNOSUPPORT => "EAFNOSUPPORT",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::ERFKILL => "ERFKILL",
        }
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.as_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_values_match_linux() {
        assert_eq!(Errno::EPROTONOSUPPORT.as_raw(), 93);
        assert_eq!(Errno::ESOCKTNOSUPPORT.as_raw(), 94);
        assert_eq!(Errno::EAFNOSUPPORT.as_raw(), 97);
        assert_eq!(Errno::ENOSYS.as_raw(), 38);
        assert_eq!(Errno::EINVAL.as_raw(), 22);
        assert_eq!(Errno::EFBIG.as_raw(), 27);
    }

    #[test]
    fn retval_is_negated() {
        assert_eq!(Errno::ENOENT.as_retval(), -2);
        assert_eq!(Errno::EAFNOSUPPORT.as_retval(), -97);
    }

    #[test]
    fn display_contains_symbol_and_number() {
        let shown = Errno::EAFNOSUPPORT.to_string();
        assert!(shown.contains("EAFNOSUPPORT"));
        assert!(shown.contains("97"));
    }
}
