//! Signals, with the coredump-producing set that drives the Table 4.2
//! `rt_sigreturn`/`rseq`/`fallocate`/`ftruncate` adversarial vectors.
//!
//! §4.3.2 of the paper: "any signal which triggers a core dump would have
//! the same effect. Namely, this includes SIGABRT/SIGIOT, SIGBUS, SIGFPE,
//! SIGILL, SIGSEGV, SIGQUIT, SIGSYS/SIGUNUSED, SIGTRAP, SIGXCPU and SIGXFSZ
//! by default." The kernel model spawns a usermodehelper coredump for every
//! delivered member of this set.

/// A subset of POSIX signals, with Linux numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Signal {
    /// Hangup.
    SIGHUP = 1,
    /// Interrupt.
    SIGINT = 2,
    /// Quit — dumps core.
    SIGQUIT = 3,
    /// Illegal instruction — dumps core.
    SIGILL = 4,
    /// Trace trap — dumps core.
    SIGTRAP = 5,
    /// Abort (a.k.a. SIGIOT) — dumps core.
    SIGABRT = 6,
    /// Bus error — dumps core.
    SIGBUS = 7,
    /// Floating-point exception — dumps core.
    SIGFPE = 8,
    /// Kill.
    SIGKILL = 9,
    /// Segmentation violation — dumps core.
    SIGSEGV = 11,
    /// Broken pipe.
    SIGPIPE = 13,
    /// Alarm clock.
    SIGALRM = 14,
    /// Termination.
    SIGTERM = 15,
    /// Child status change.
    SIGCHLD = 17,
    /// Bad system call (a.k.a. SIGUNUSED) — dumps core.
    SIGSYS = 31,
    /// CPU time limit exceeded — dumps core.
    SIGXCPU = 24,
    /// File size limit exceeded — dumps core.
    SIGXFSZ = 25,
}

impl Signal {
    /// The Linux signal number.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Whether the default disposition of this signal produces a core dump —
    /// and therefore, on a default-configured host, an out-of-band
    /// usermodehelper workload (§2.4.3).
    pub fn dumps_core(self) -> bool {
        matches!(
            self,
            Signal::SIGQUIT
                | Signal::SIGILL
                | Signal::SIGTRAP
                | Signal::SIGABRT
                | Signal::SIGBUS
                | Signal::SIGFPE
                | Signal::SIGSEGV
                | Signal::SIGSYS
                | Signal::SIGXCPU
                | Signal::SIGXFSZ
        )
    }

    /// Whether the default disposition terminates the receiving process.
    pub fn fatal_by_default(self) -> bool {
        !matches!(self, Signal::SIGCHLD)
    }

    /// The full coredump set of §4.3.2, in signal-number order.
    pub fn coredump_set() -> [Signal; 10] {
        [
            Signal::SIGQUIT,
            Signal::SIGILL,
            Signal::SIGTRAP,
            Signal::SIGABRT,
            Signal::SIGBUS,
            Signal::SIGFPE,
            Signal::SIGSEGV,
            Signal::SIGXCPU,
            Signal::SIGXFSZ,
            Signal::SIGSYS,
        ]
    }
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Signal names are already their conventional upper-case symbols.
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coredump_set_matches_paper_list() {
        let set = Signal::coredump_set();
        assert_eq!(set.len(), 10);
        for sig in set {
            assert!(sig.dumps_core(), "{sig} must dump core");
            assert!(sig.fatal_by_default());
        }
    }

    #[test]
    fn non_dumping_signals() {
        for sig in [
            Signal::SIGHUP,
            Signal::SIGINT,
            Signal::SIGKILL,
            Signal::SIGPIPE,
            Signal::SIGALRM,
            Signal::SIGTERM,
            Signal::SIGCHLD,
        ] {
            assert!(!sig.dumps_core(), "{sig} must not dump core");
        }
    }

    #[test]
    fn numbers_match_linux() {
        assert_eq!(Signal::SIGSEGV.number(), 11);
        assert_eq!(Signal::SIGXFSZ.number(), 25);
        assert_eq!(Signal::SIGSYS.number(), 31);
    }

    #[test]
    fn sigchld_is_ignored_by_default() {
        assert!(!Signal::SIGCHLD.fatal_by_default());
    }

    #[test]
    fn display_is_symbol() {
        assert_eq!(Signal::SIGSEGV.to_string(), "SIGSEGV");
    }
}
