//! Network state: socket families, the kernel module table, and — the heart
//! of the paper's novel Table 4.2 finding — the `modprobe` path taken when a
//! *valid but unavailable* family is requested.
//!
//! §4.3.3: "no negative result is cached in the modprobe handling code in
//! the event a valid socket family is requested from userspace but no
//! corresponding module exists on disk. In this case, repeated requests for
//! a socket will cause modprobe to be executed again and again."

use std::collections::HashSet;

use crate::errno::Errno;

/// Address families (subset of `AF_*`, Linux numeric values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressFamily {
    /// `AF_UNIX`.
    Unix,
    /// `AF_INET`.
    Inet,
    /// `AF_INET6`.
    Inet6,
    /// `AF_NETLINK` — used by the audit-triggering seeds.
    Netlink,
    /// `AF_PACKET`.
    Packet,
    /// A valid family number whose protocol module is not loaded and not on
    /// disk (e.g. `AF_AX25`, `AF_X25`, `AF_ROSE` on a desktop kernel).
    Modular(u16),
    /// An out-of-range family number.
    Invalid(u64),
}

impl AddressFamily {
    /// Decode a raw `domain` argument of `socket(2)`.
    pub fn from_raw(raw: u64) -> AddressFamily {
        match raw {
            1 => AddressFamily::Unix,
            2 => AddressFamily::Inet,
            10 => AddressFamily::Inet6,
            16 => AddressFamily::Netlink,
            17 => AddressFamily::Packet,
            // AF_MAX on Linux 5.x is 45; families <= that are "valid".
            n if n <= 45 => AddressFamily::Modular(n as u16),
            n => AddressFamily::Invalid(n),
        }
    }

    /// The raw numeric value.
    pub fn as_raw(&self) -> u64 {
        match self {
            AddressFamily::Unix => 1,
            AddressFamily::Inet => 2,
            AddressFamily::Inet6 => 10,
            AddressFamily::Netlink => 16,
            AddressFamily::Packet => 17,
            AddressFamily::Modular(n) => *n as u64,
            AddressFamily::Invalid(n) => *n,
        }
    }
}

/// A live socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Socket {
    /// Address family of the socket.
    pub family: AddressFamily,
    /// `SOCK_*` type argument.
    pub sock_type: u64,
    /// Protocol argument.
    pub protocol: u64,
    /// Whether this is the netlink audit socket (`NETLINK_AUDIT` proto 9).
    pub audit: bool,
}

/// Outcome of a socket-creation request, before any fd allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketOutcome {
    /// Created successfully.
    Created(Socket),
    /// Failed with `errno`, *after* having exec'd modprobe `modprobe_execs`
    /// times through the usermodehelper API (the OOB channel).
    Failed {
        /// Errno reported to the caller.
        errno: Errno,
        /// Number of modprobe executions this request caused (0 or 1).
        modprobe_execs: u32,
    },
}

/// Kernel network state.
#[derive(Debug, Clone)]
pub struct NetState {
    /// Families with a compiled-in or already-loaded implementation.
    builtin: HashSet<u64>,
    /// When `true`, model the *patched* kernel that caches negative module
    /// lookups (the mitigation the paper proposes submitting). The default
    /// `false` reproduces the vulnerable mainline behaviour.
    pub negative_cache_enabled: bool,
    /// Families already known-missing (only consulted when the negative
    /// cache is enabled).
    negative_cache: HashSet<u64>,
    /// Total modprobe executions (diagnostics).
    pub modprobe_exec_count: u64,
    /// Bytes transmitted in the current observer window (reset each round).
    tx_bytes_window: u64,
}

impl NetState {
    /// The NAPI budget: once a window's cumulative transmits exceed this,
    /// packet completion work is kicked out of syscall context into
    /// `ksoftirqd` — the trigger for the net-softirq deferral channel.
    pub const NAPI_BUDGET_BYTES: u64 = 256 << 10;
    /// Desktop-kernel default: common families built in, negative caching
    /// off (the vulnerable configuration the paper fuzzed).
    pub fn new() -> NetState {
        let builtin = [1u64, 2, 10, 16, 17].into_iter().collect();
        NetState {
            builtin,
            negative_cache_enabled: false,
            negative_cache: HashSet::new(),
            modprobe_exec_count: 0,
            tx_bytes_window: 0,
        }
    }

    /// Account `len` transmitted bytes; returns `true` once the window's
    /// cumulative transmit load exceeds the NAPI budget, meaning rx/tx
    /// completion processing now runs in `ksoftirqd` context instead of
    /// being absorbed inline by the sender.
    pub fn transmit(&mut self, len: u64) -> bool {
        self.tx_bytes_window = self.tx_bytes_window.saturating_add(len);
        self.tx_bytes_window > Self::NAPI_BUDGET_BYTES
    }

    /// Bytes transmitted so far this window.
    pub fn tx_bytes_window(&self) -> u64 {
        self.tx_bytes_window
    }

    /// Reset per-window transmit accounting (start of an observer round).
    pub fn reset_window(&mut self) {
        self.tx_bytes_window = 0;
    }

    /// Process a `socket(2)` request.
    ///
    /// Follows the kernel's `__sock_create` logic: invalid family →
    /// `EAFNOSUPPORT` immediately; valid-but-missing family → exec modprobe
    /// via usermodehelper, module not found → `EAFNOSUPPORT` (or the type/
    /// protocol variants), *without caching the negative result* unless the
    /// mitigation flag is set.
    pub fn create_socket(
        &mut self,
        family_raw: u64,
        sock_type: u64,
        protocol: u64,
    ) -> SocketOutcome {
        let family = AddressFamily::from_raw(family_raw);
        match family {
            AddressFamily::Invalid(_) => SocketOutcome::Failed {
                errno: Errno::EAFNOSUPPORT,
                modprobe_execs: 0,
            },
            AddressFamily::Modular(n) => {
                if self.negative_cache_enabled && self.negative_cache.contains(&(n as u64)) {
                    return SocketOutcome::Failed {
                        errno: Errno::EAFNOSUPPORT,
                        modprobe_execs: 0,
                    };
                }
                // The request looks valid, so the kernel asks modprobe to
                // load `net-pf-<n>` — every single time.
                self.modprobe_exec_count += 1;
                if self.negative_cache_enabled {
                    self.negative_cache.insert(n as u64);
                }
                SocketOutcome::Failed {
                    errno: Errno::EAFNOSUPPORT,
                    modprobe_execs: 1,
                }
            }
            _ => {
                // Family available: validate type and protocol.
                if sock_type == 0 || sock_type > 10 {
                    return SocketOutcome::Failed {
                        errno: Errno::ESOCKTNOSUPPORT,
                        modprobe_execs: 0,
                    };
                }
                // Unknown protocols on a known family also trigger a module
                // request (`net-pf-<f>-proto-<p>`) before failing.
                if protocol > 16 {
                    let execs = if self.negative_cache_enabled
                        && self.negative_cache.contains(&(family_raw << 16 | protocol))
                    {
                        0
                    } else {
                        self.modprobe_exec_count += 1;
                        if self.negative_cache_enabled {
                            self.negative_cache.insert(family_raw << 16 | protocol);
                        }
                        1
                    };
                    return SocketOutcome::Failed {
                        errno: Errno::EPROTONOSUPPORT,
                        modprobe_execs: execs,
                    };
                }
                let audit = family == AddressFamily::Netlink && protocol == 9;
                SocketOutcome::Created(Socket {
                    family,
                    sock_type,
                    protocol,
                    audit,
                })
            }
        }
    }

    /// Whether `family_raw` has a loaded implementation.
    pub fn family_available(&self, family_raw: u64) -> bool {
        self.builtin.contains(&family_raw)
    }
}

impl Default for NetState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_families_create_sockets() {
        let mut net = NetState::new();
        for fam in [1u64, 2, 10, 16, 17] {
            match net.create_socket(fam, 1, 0) {
                SocketOutcome::Created(_) => {}
                other => panic!("family {fam} should create, got {other:?}"),
            }
        }
        assert_eq!(net.modprobe_exec_count, 0);
    }

    #[test]
    fn modular_family_execs_modprobe_every_time() {
        let mut net = NetState::new();
        for _ in 0..50 {
            let out = net.create_socket(9, 3, 0); // AF_X25-ish
            assert_eq!(
                out,
                SocketOutcome::Failed {
                    errno: Errno::EAFNOSUPPORT,
                    modprobe_execs: 1
                }
            );
        }
        assert_eq!(net.modprobe_exec_count, 50, "no negative caching");
    }

    #[test]
    fn negative_cache_mitigation_stops_the_storm() {
        let mut net = NetState::new();
        net.negative_cache_enabled = true;
        for _ in 0..50 {
            net.create_socket(9, 3, 0);
        }
        assert_eq!(net.modprobe_exec_count, 1, "patched kernel caches the miss");
    }

    #[test]
    fn invalid_family_fails_cheaply() {
        let mut net = NetState::new();
        let out = net.create_socket(4096, 1, 0);
        assert_eq!(
            out,
            SocketOutcome::Failed {
                errno: Errno::EAFNOSUPPORT,
                modprobe_execs: 0
            }
        );
        assert_eq!(net.modprobe_exec_count, 0);
    }

    #[test]
    fn bad_type_is_esocktnosupport() {
        let mut net = NetState::new();
        let out = net.create_socket(2, 0, 0);
        assert!(matches!(
            out,
            SocketOutcome::Failed {
                errno: Errno::ESOCKTNOSUPPORT,
                ..
            }
        ));
    }

    #[test]
    fn bad_protocol_is_eprotonosupport_with_modprobe() {
        let mut net = NetState::new();
        let out = net.create_socket(2, 1, 99);
        assert_eq!(
            out,
            SocketOutcome::Failed {
                errno: Errno::EPROTONOSUPPORT,
                modprobe_execs: 1
            }
        );
    }

    #[test]
    fn audit_socket_is_detected() {
        let mut net = NetState::new();
        match net.create_socket(16, 3, 9) {
            SocketOutcome::Created(s) => assert!(s.audit),
            other => panic!("expected created, got {other:?}"),
        }
        match net.create_socket(16, 3, 0) {
            SocketOutcome::Created(s) => assert!(!s.audit),
            other => panic!("expected created, got {other:?}"),
        }
    }

    #[test]
    fn napi_budget_gates_the_softirq_kick() {
        let mut net = NetState::new();
        // Four full 64 KiB sends sit exactly at the budget: still inline.
        for _ in 0..4 {
            assert!(!net.transmit(64 << 10));
        }
        // The next byte tips completion processing into ksoftirqd.
        assert!(net.transmit(1));
        assert_eq!(net.tx_bytes_window(), NetState::NAPI_BUDGET_BYTES + 1);
        // A new observer round starts the accounting over.
        net.reset_window();
        assert_eq!(net.tx_bytes_window(), 0);
        assert!(!net.transmit(64 << 10));
    }

    #[test]
    fn family_decode_round_trips() {
        for raw in [1u64, 2, 10, 16, 17, 30, 4096] {
            assert_eq!(AddressFamily::from_raw(raw).as_raw(), raw);
        }
    }
}
