//! Per-core CPU time accounting in the `/proc/stat` category schema.
//!
//! The TORPEDO observer logs (Tables A.1–A.4 of the paper) are constructed by
//! sampling `/proc/stat` at two instants and diffing. This module provides
//! the category ledger those tables are built from: `USER`, `NICE`, `SYSTEM`,
//! `IDLE`, `IO WAIT`, `IRQ`, `SOFTIRQ`, `STEAL`, `GUEST`, `GUEST NICE`, plus
//! the derived `BUSY` (sum of all non-idle categories, exactly as the paper
//! computes it — io-wait counts as busy in the appendix tables).

use crate::time::Usecs;

/// One `/proc/stat` accounting category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuCategory {
    /// Normal user-mode execution.
    User,
    /// Niced user-mode execution.
    Nice,
    /// Kernel-mode execution.
    System,
    /// Idle.
    Idle,
    /// Waiting on block I/O completion.
    IoWait,
    /// Hard interrupt servicing.
    Irq,
    /// Soft interrupt servicing.
    SoftIrq,
    /// Stolen by the hypervisor.
    Steal,
    /// Running a guest.
    Guest,
    /// Running a niced guest.
    GuestNice,
}

impl CpuCategory {
    /// All categories, in `/proc/stat` column order.
    pub const ALL: [CpuCategory; 10] = [
        CpuCategory::User,
        CpuCategory::Nice,
        CpuCategory::System,
        CpuCategory::Idle,
        CpuCategory::IoWait,
        CpuCategory::Irq,
        CpuCategory::SoftIrq,
        CpuCategory::Steal,
        CpuCategory::Guest,
        CpuCategory::GuestNice,
    ];

    /// The column header used in the paper's observer logs.
    pub fn header(self) -> &'static str {
        match self {
            CpuCategory::User => "USER",
            CpuCategory::Nice => "NICE",
            CpuCategory::System => "SYSTEM",
            CpuCategory::Idle => "IDLE",
            CpuCategory::IoWait => "IO WAIT",
            CpuCategory::Irq => "IRQ",
            CpuCategory::SoftIrq => "SOFTIRQ",
            CpuCategory::Steal => "STEAL",
            CpuCategory::Guest => "GUEST",
            CpuCategory::GuestNice => "GUEST NICE",
        }
    }
}

/// Cumulative CPU time of one core, split over the ten categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTimes {
    /// Normal user-mode time.
    pub user: Usecs,
    /// Niced user-mode time.
    pub nice: Usecs,
    /// Kernel-mode time.
    pub system: Usecs,
    /// Idle time.
    pub idle: Usecs,
    /// Block-I/O wait time.
    pub iowait: Usecs,
    /// Hard-IRQ time.
    pub irq: Usecs,
    /// Soft-IRQ time.
    pub softirq: Usecs,
    /// Hypervisor steal time.
    pub steal: Usecs,
    /// Guest time.
    pub guest: Usecs,
    /// Niced guest time.
    pub guest_nice: Usecs,
}

impl CpuTimes {
    /// Access one category.
    pub fn get(&self, cat: CpuCategory) -> Usecs {
        match cat {
            CpuCategory::User => self.user,
            CpuCategory::Nice => self.nice,
            CpuCategory::System => self.system,
            CpuCategory::Idle => self.idle,
            CpuCategory::IoWait => self.iowait,
            CpuCategory::Irq => self.irq,
            CpuCategory::SoftIrq => self.softirq,
            CpuCategory::Steal => self.steal,
            CpuCategory::Guest => self.guest,
            CpuCategory::GuestNice => self.guest_nice,
        }
    }

    /// Mutable access to one category.
    pub fn get_mut(&mut self, cat: CpuCategory) -> &mut Usecs {
        match cat {
            CpuCategory::User => &mut self.user,
            CpuCategory::Nice => &mut self.nice,
            CpuCategory::System => &mut self.system,
            CpuCategory::Idle => &mut self.idle,
            CpuCategory::IoWait => &mut self.iowait,
            CpuCategory::Irq => &mut self.irq,
            CpuCategory::SoftIrq => &mut self.softirq,
            CpuCategory::Steal => &mut self.steal,
            CpuCategory::Guest => &mut self.guest,
            CpuCategory::GuestNice => &mut self.guest_nice,
        }
    }

    /// Charge `amount` to `cat`.
    pub fn charge(&mut self, cat: CpuCategory, amount: Usecs) {
        *self.get_mut(cat) += amount;
    }

    /// Sum of all non-idle categories — the paper's `BUSY` column.
    pub fn busy(&self) -> Usecs {
        let mut total = Usecs::ZERO;
        for cat in CpuCategory::ALL {
            if cat != CpuCategory::Idle {
                total += self.get(cat);
            }
        }
        total
    }

    /// Sum over all categories — the paper's `TOTAL` column.
    pub fn total(&self) -> Usecs {
        self.busy() + self.idle
    }

    /// `BUSY / TOTAL` as a percentage — the paper's `PERCENT` column.
    ///
    /// Returns `0.0` when no time has been accounted at all.
    pub fn busy_percent(&self) -> f64 {
        let total = self.total().as_micros();
        if total == 0 {
            0.0
        } else {
            100.0 * self.busy().as_micros() as f64 / total as f64
        }
    }

    /// Component-wise difference `self - earlier`, saturating at zero.
    ///
    /// This mirrors sampling `/proc/stat` twice and diffing, which is how
    /// every observer-log table in the paper was produced.
    #[must_use]
    pub fn since(&self, earlier: &CpuTimes) -> CpuTimes {
        let mut out = CpuTimes::default();
        for cat in CpuCategory::ALL {
            *out.get_mut(cat) = self.get(cat).saturating_sub(earlier.get(cat));
        }
        out
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(&self, other: &CpuTimes) -> CpuTimes {
        let mut out = *self;
        for cat in CpuCategory::ALL {
            *out.get_mut(cat) += other.get(cat);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CpuTimes {
        let mut t = CpuTimes::default();
        t.charge(CpuCategory::User, Usecs(100));
        t.charge(CpuCategory::System, Usecs(300));
        t.charge(CpuCategory::Idle, Usecs(500));
        t.charge(CpuCategory::IoWait, Usecs(60));
        t.charge(CpuCategory::SoftIrq, Usecs(40));
        t
    }

    #[test]
    fn busy_excludes_only_idle() {
        let t = sample();
        assert_eq!(t.busy(), Usecs(500));
        assert_eq!(t.total(), Usecs(1000));
    }

    #[test]
    fn busy_percent_matches_paper_formula() {
        let t = sample();
        assert!((t.busy_percent() - 50.0).abs() < 1e-9);
        assert_eq!(CpuTimes::default().busy_percent(), 0.0);
    }

    #[test]
    fn since_diffs_each_category() {
        let early = sample();
        let mut late = early;
        late.charge(CpuCategory::User, Usecs(50));
        late.charge(CpuCategory::Idle, Usecs(25));
        let d = late.since(&early);
        assert_eq!(d.user, Usecs(50));
        assert_eq!(d.idle, Usecs(25));
        assert_eq!(d.system, Usecs::ZERO);
    }

    #[test]
    fn since_saturates() {
        let early = sample();
        let d = CpuTimes::default().since(&early);
        assert_eq!(d.busy(), Usecs::ZERO);
    }

    #[test]
    fn merged_adds() {
        let a = sample();
        let b = sample();
        let m = a.merged(&b);
        assert_eq!(m.user, Usecs(200));
        assert_eq!(m.total(), Usecs(2000));
    }

    #[test]
    fn get_mut_roundtrip_all_categories() {
        let mut t = CpuTimes::default();
        for (i, cat) in CpuCategory::ALL.into_iter().enumerate() {
            *t.get_mut(cat) = Usecs(i as u64 + 1);
        }
        for (i, cat) in CpuCategory::ALL.into_iter().enumerate() {
            assert_eq!(t.get(cat), Usecs(i as u64 + 1), "category {cat:?}");
        }
    }

    #[test]
    fn headers_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for cat in CpuCategory::ALL {
            assert!(seen.insert(cat.header()));
        }
    }
}
