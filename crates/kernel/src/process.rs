//! The simulated process table.
//!
//! TORPEDO's per-process feedback (§3.4) needs to distinguish the kinds of
//! processes the paper's `top(1)` filter selects: `docker` components,
//! `kworker` threads, `kauditd`, `systemd-journal`, miscellaneous kernel
//! threads, and the fuzzing executors themselves. Short-lived helper
//! processes (e.g. `modprobe` storms) are modelled too — and, exactly as the
//! paper observes, `top` cannot attribute their usage, while the per-core
//! `/proc/stat` counters still see it.

use std::collections::HashMap;

use crate::cgroup::CgroupId;
use crate::time::Usecs;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Kernel-thread flavours relevant to work deferral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KthreadKind {
    /// Generic deferred-work worker (`kworker/uN:M`).
    Kworker,
    /// Per-core soft-IRQ thread (`ksoftirqd/N`).
    Ksoftirqd,
    /// The kernel thread daemon all kthreads fork from.
    Kthreadd,
}

/// Long-lived userspace daemons tracked by the paper's top filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaemonKind {
    /// The Docker engine daemon.
    Dockerd,
    /// containerd, managing container objects.
    Containerd,
    /// Per-container shim keeping I/O pipes alive.
    ContainerdShim,
    /// Kernel-side audit daemon.
    Kauditd,
    /// Userspace audit daemon.
    Auditd,
    /// systemd journal daemon.
    Journald,
    /// Periodic cron noise.
    Cron,
    /// The gVisor sentry (one per sandboxed container).
    GvisorSentry,
}

/// Short-lived helper processes spawned by the kernel (usermodehelper API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelperKind {
    /// `modprobe`, re-exec'd for every unsatisfiable module request.
    Modprobe,
    /// The registered coredump pipe helper.
    CoreDumpHelper,
}

/// What kind of process this is; drives cgroup placement and top visibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessKind {
    /// A fuzzing executor running inside a container.
    Executor {
        /// Name of the owning container.
        container: String,
    },
    /// A kernel thread (always in the root cgroup).
    KernelThread(KthreadKind),
    /// A long-lived system daemon.
    Daemon(DaemonKind),
    /// A short-lived usermodehelper child.
    Helper(HelperKind),
    /// Background host noise (cron jobs, logging, stray network handling).
    Noise,
}

impl ProcessKind {
    /// Whether the paper's `top` wrapper can attribute CPU to this process:
    /// only long-lived processes survive between two frames.
    pub fn long_lived(&self) -> bool {
        !matches!(self, ProcessKind::Helper(_))
    }
}

/// Per-process resource limits (subset of `getrlimit(2)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rlimits {
    /// `RLIMIT_FSIZE`: maximum file size, bytes. Writes/fallocates beyond it
    /// deliver `SIGXFSZ` (the Table 4.2 `fallocate`/`ftruncate` vector).
    pub fsize: u64,
    /// `RLIMIT_NOFILE`: maximum number of open file descriptors.
    pub nofile: u32,
}

impl Default for Rlimits {
    fn default() -> Self {
        Rlimits {
            fsize: 1 << 30, // 1 GiB
            nofile: 1024,
        }
    }
}

/// One simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    name: String,
    kind: ProcessKind,
    cgroup: CgroupId,
    rlimits: Rlimits,
    alive: bool,
    /// CPU consumed by this process in the current accounting round.
    round_cpu: Usecs,
    /// Set when the process was spawned mid-round (top cannot see it).
    born_this_round: bool,
    /// Count of times this process has been killed and restarted this round.
    restarts: u32,
}

impl Process {
    /// Process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Display name (e.g. `"kworker/u24:3"`, `"syz-executor-1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process kind.
    pub fn kind(&self) -> &ProcessKind {
        &self.kind
    }

    /// Owning cgroup.
    pub fn cgroup(&self) -> CgroupId {
        self.cgroup
    }

    /// Resource limits.
    pub fn rlimits(&self) -> Rlimits {
        self.rlimits
    }

    /// Mutable resource limits (for `setrlimit(2)`).
    pub fn rlimits_mut(&mut self) -> &mut Rlimits {
        &mut self.rlimits
    }

    /// Whether the process is currently alive.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// CPU consumed this round.
    pub fn round_cpu(&self) -> Usecs {
        self.round_cpu
    }

    /// Whether the process was spawned during the current round.
    pub fn born_this_round(&self) -> bool {
        self.born_this_round
    }

    /// Times this process died and was restarted this round (fatal signals).
    pub fn restarts(&self) -> u32 {
        self.restarts
    }
}

/// The process table.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    procs: HashMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Create an empty table. PIDs start at 1 (`init` is implicit).
    pub fn new() -> ProcessTable {
        ProcessTable {
            procs: HashMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process into `cgroup`.
    pub fn spawn(&mut self, name: &str, kind: ProcessKind, cgroup: CgroupId) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                name: name.to_string(),
                kind,
                cgroup,
                rlimits: Rlimits::default(),
                alive: true,
                round_cpu: Usecs::ZERO,
                born_this_round: true,
                restarts: 0,
            },
        );
        pid
    }

    /// Mark a process dead. Unknown pids are ignored.
    pub fn exit(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.alive = false;
        }
    }

    /// Revive a process after a fatal signal (the executor loop restarts the
    /// workload, as SYZKALLER's executor does). Increments the restart count.
    pub fn restart(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.alive = true;
            p.restarts += 1;
        }
    }

    /// Look up a process.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Charge CPU to a process for the current round.
    pub fn charge_cpu(&mut self, pid: Pid, amount: Usecs) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.round_cpu += amount;
        }
    }

    /// Iterate over all processes (alive and dead) in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        let mut v: Vec<&Process> = self.procs.values().collect();
        v.sort_by_key(|p| p.pid);
        v.into_iter()
    }

    /// Number of processes ever spawned and still in the table.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Begin a new accounting round: zero per-round CPU, clear the
    /// born-this-round marker on survivors, and reap dead short-lived
    /// helpers so the table does not grow without bound.
    pub fn begin_round(&mut self) {
        self.procs.retain(|_, p| p.alive || p.kind.long_lived());
        for p in self.procs.values_mut() {
            p.round_cpu = Usecs::ZERO;
            p.born_this_round = false;
            p.restarts = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupTree;

    #[test]
    fn spawn_assigns_monotonic_pids() {
        let mut t = ProcessTable::new();
        let a = t.spawn("a", ProcessKind::Noise, CgroupTree::ROOT);
        let b = t.spawn("b", ProcessKind::Noise, CgroupTree::ROOT);
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn helpers_are_short_lived_for_top() {
        assert!(!ProcessKind::Helper(HelperKind::Modprobe).long_lived());
        assert!(ProcessKind::Daemon(DaemonKind::Kauditd).long_lived());
        assert!(ProcessKind::KernelThread(KthreadKind::Kworker).long_lived());
        assert!(ProcessKind::Executor {
            container: "c".into()
        }
        .long_lived());
    }

    #[test]
    fn charge_and_round_reset() {
        let mut t = ProcessTable::new();
        let pid = t.spawn("x", ProcessKind::Noise, CgroupTree::ROOT);
        t.charge_cpu(pid, Usecs(500));
        assert_eq!(t.get(pid).unwrap().round_cpu(), Usecs(500));
        t.begin_round();
        assert_eq!(t.get(pid).unwrap().round_cpu(), Usecs::ZERO);
        assert!(!t.get(pid).unwrap().born_this_round());
    }

    #[test]
    fn begin_round_reaps_dead_helpers() {
        let mut t = ProcessTable::new();
        let helper = t.spawn(
            "modprobe",
            ProcessKind::Helper(HelperKind::Modprobe),
            CgroupTree::ROOT,
        );
        let daemon = t.spawn(
            "kauditd",
            ProcessKind::Daemon(DaemonKind::Kauditd),
            CgroupTree::ROOT,
        );
        t.exit(helper);
        t.exit(daemon);
        t.begin_round();
        assert!(t.get(helper).is_none(), "dead helper reaped");
        assert!(t.get(daemon).is_some(), "dead daemon retained");
    }

    #[test]
    fn restart_revives_and_counts() {
        let mut t = ProcessTable::new();
        let pid = t.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            CgroupTree::ROOT,
        );
        t.exit(pid);
        assert!(!t.get(pid).unwrap().alive());
        t.restart(pid);
        let p = t.get(pid).unwrap();
        assert!(p.alive());
        assert_eq!(p.restarts(), 1);
    }

    #[test]
    fn rlimits_default_and_mutable() {
        let mut t = ProcessTable::new();
        let pid = t.spawn("x", ProcessKind::Noise, CgroupTree::ROOT);
        assert_eq!(t.get(pid).unwrap().rlimits().fsize, 1 << 30);
        t.get_mut(pid).unwrap().rlimits_mut().fsize = 4096;
        assert_eq!(t.get(pid).unwrap().rlimits().fsize, 4096);
    }

    #[test]
    fn iter_is_pid_ordered() {
        let mut t = ProcessTable::new();
        for i in 0..5 {
            t.spawn(&format!("p{i}"), ProcessKind::Noise, CgroupTree::ROOT);
        }
        let pids: Vec<u32> = t.iter().map(|p| p.pid().0).collect();
        let mut sorted = pids.clone();
        sorted.sort_unstable();
        assert_eq!(pids, sorted);
    }
}
