//! A small virtual filesystem: enough semantics for the fuzzed syscall
//! surface (open/creat/read/write/lseek/fallocate/ftruncate/xattr/readlink)
//! to behave consistently, plus the page-cache dirty counter that makes
//! `sync(2)` expensive.

use std::collections::HashMap;

use crate::errno::Errno;

/// File descriptor number within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub i32);

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdObject {
    /// A regular file (by inode).
    File {
        /// Inode of the open file.
        ino: u64,
        /// Current file offset.
        offset: u64,
    },
    /// An inotify instance.
    Inotify,
    /// A socket (by socket table index).
    Socket {
        /// Index into the kernel socket table.
        index: usize,
    },
    /// One end of a socketpair/pipe.
    PipeEnd,
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub mode: u32,
    /// Extended attributes.
    pub xattrs: HashMap<String, Vec<u8>>,
    /// Whether the path is a symlink (readlink target = the path itself for
    /// the `test_eloop` style chains used in the Moonshine seeds).
    pub symlink: bool,
}

/// The filesystem: path table plus global dirty-page bookkeeping.
#[derive(Debug, Clone)]
pub struct Vfs {
    files: HashMap<String, FileMeta>,
    next_ino: u64,
    /// Bytes of dirty page-cache data that a `sync(2)` would flush.
    dirty_bytes: u64,
}

/// Well-known paths pre-populated so Moonshine-style seeds resolve.
const WELL_KNOWN: &[(&str, u32, bool)] = &[
    ("/lib/x86_64-Linux-gnu/libc.so.6", 0o755, false),
    ("/proc/sys/fs/mqueue/msg_max", 0o644, false),
    ("/etc/passwd", 0o644, false),
    ("/dev/null", 0o666, false),
    ("/tmp", 0o777, false),
    ("mntpoint/tmp", 0o777, false),
    ("testdir_1", 0o755, false),
    ("./test_eloop", 0o777, true),
];

impl Vfs {
    /// A filesystem pre-populated with the well-known paths the evaluation
    /// seeds reference.
    pub fn new() -> Vfs {
        let mut vfs = Vfs {
            files: HashMap::new(),
            next_ino: 1,
            dirty_bytes: 0,
        };
        for (path, mode, symlink) in WELL_KNOWN {
            vfs.create(path, *mode);
            if *symlink {
                if let Some(meta) = vfs.files.get_mut(*path) {
                    meta.symlink = true;
                }
            }
        }
        vfs
    }

    /// Create (or truncate) a file at `path` and return its inode.
    pub fn create(&mut self, path: &str, mode: u32) -> u64 {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.files.insert(
            path.to_string(),
            FileMeta {
                ino,
                size: 0,
                mode,
                xattrs: HashMap::new(),
                symlink: false,
            },
        );
        ino
    }

    /// Look up a path.
    pub fn lookup(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Mutable lookup.
    pub fn lookup_mut(&mut self, path: &str) -> Option<&mut FileMeta> {
        self.files.get_mut(path)
    }

    /// Look up by inode (linear scan; the table stays small).
    pub fn by_ino_mut(&mut self, ino: u64) -> Option<&mut FileMeta> {
        self.files.values_mut().find(|m| m.ino == ino)
    }

    /// Resolve a path for `open(2)`, reproducing `ELOOP` for the deep
    /// symlink chains in the Moonshine seeds.
    ///
    /// # Errors
    /// `ELOOP` for chained symlinks, `ENOENT` for absent paths.
    pub fn resolve(&self, path: &str) -> Result<&FileMeta, Errno> {
        // A path that traverses a self-referencing symlink more than the
        // kernel's nesting limit (40) fails with ELOOP.
        let components = path.split('/').filter(|c| !c.is_empty()).count();
        if components > 40 {
            return Err(Errno::ELOOP);
        }
        match self.files.get(path) {
            Some(meta) if meta.symlink && components > 1 => Err(Errno::ELOOP),
            Some(meta) => Ok(meta),
            None => Err(Errno::ENOENT),
        }
    }

    /// Record `bytes` of buffered (not yet flushed) writes.
    pub fn dirty(&mut self, bytes: u64) {
        self.dirty_bytes = self.dirty_bytes.saturating_add(bytes);
    }

    /// Flush all dirty data, returning how many bytes were flushed.
    /// This is the work `sync(2)` defers to kworker threads.
    pub fn flush_all(&mut self) -> u64 {
        std::mem::take(&mut self.dirty_bytes)
    }

    /// Currently dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no files exist (never true in practice: well-known paths).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-process file-descriptor table.
#[derive(Debug, Clone)]
pub struct FdTable {
    entries: HashMap<Fd, FdObject>,
    next_fd: i32,
}

impl Default for FdTable {
    fn default() -> FdTable {
        FdTable::new()
    }
}

impl FdTable {
    /// An empty table; fds start at 3 (0–2 are std streams).
    pub fn new() -> FdTable {
        FdTable {
            entries: HashMap::new(),
            next_fd: 3,
        }
    }

    /// Allocate the next fd for `obj`, enforcing `limit` (RLIMIT_NOFILE).
    ///
    /// # Errors
    /// `EMFILE` when the table is full.
    pub fn alloc(&mut self, obj: FdObject, limit: u32) -> Result<Fd, Errno> {
        if self.entries.len() as u32 + 3 >= limit {
            return Err(Errno::EMFILE);
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.entries.insert(fd, obj);
        Ok(fd)
    }

    /// Look up an fd.
    pub fn get(&self, fd: Fd) -> Option<&FdObject> {
        self.entries.get(&fd)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: Fd) -> Option<&mut FdObject> {
        self.entries.get_mut(&fd)
    }

    /// Close an fd.
    ///
    /// # Errors
    /// `EBADF` if not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        self.entries.remove(&fd).map(|_| ()).ok_or(Errno::EBADF)
    }

    /// Close everything (the executor's `EnableCloseFDs` behaviour).
    pub fn close_all(&mut self) {
        self.entries.clear();
        self.next_fd = 3;
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_paths_resolve() {
        let vfs = Vfs::new();
        assert!(vfs.resolve("/lib/x86_64-Linux-gnu/libc.so.6").is_ok());
        assert!(vfs.resolve("/proc/sys/fs/mqueue/msg_max").is_ok());
    }

    #[test]
    fn missing_path_is_enoent() {
        let vfs = Vfs::new();
        assert_eq!(vfs.resolve("/no/such/file"), Err(Errno::ENOENT));
    }

    #[test]
    fn deep_chain_is_eloop() {
        let vfs = Vfs::new();
        let deep = "./".to_string() + &"test_eloop/".repeat(43);
        assert_eq!(vfs.resolve(&deep), Err(Errno::ELOOP));
    }

    #[test]
    fn create_assigns_fresh_inodes() {
        let mut vfs = Vfs::new();
        let a = vfs.create("a", 0o644);
        let b = vfs.create("b", 0o644);
        assert_ne!(a, b);
        assert_eq!(vfs.lookup("a").unwrap().ino, a);
    }

    #[test]
    fn dirty_and_flush() {
        let mut vfs = Vfs::new();
        vfs.dirty(4096);
        vfs.dirty(4096);
        assert_eq!(vfs.dirty_bytes(), 8192);
        assert_eq!(vfs.flush_all(), 8192);
        assert_eq!(vfs.dirty_bytes(), 0);
    }

    #[test]
    fn fd_alloc_close_cycle() {
        let mut t = FdTable::new();
        let fd = t.alloc(FdObject::Inotify, 1024).unwrap();
        assert_eq!(fd, Fd(3));
        assert!(t.get(fd).is_some());
        t.close(fd).unwrap();
        assert_eq!(t.close(fd), Err(Errno::EBADF));
    }

    #[test]
    fn fd_limit_is_emfile() {
        let mut t = FdTable::new();
        t.alloc(FdObject::Inotify, 5).unwrap();
        t.alloc(FdObject::Inotify, 5).unwrap();
        assert_eq!(t.alloc(FdObject::Inotify, 5), Err(Errno::EMFILE));
    }

    #[test]
    fn close_all_resets() {
        let mut t = FdTable::new();
        t.alloc(FdObject::Inotify, 1024).unwrap();
        t.close_all();
        assert!(t.is_empty());
        assert_eq!(t.alloc(FdObject::Inotify, 1024).unwrap(), Fd(3));
    }

    #[test]
    fn by_ino_mut_finds_file() {
        let mut vfs = Vfs::new();
        let ino = vfs.create("somefile", 0o600);
        vfs.by_ino_mut(ino).unwrap().size = 42;
        assert_eq!(vfs.lookup("somefile").unwrap().size, 42);
    }
}
