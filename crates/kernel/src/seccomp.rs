//! Seccomp profiles (§2.2.4): per-container syscall deny/allow lists.
//!
//! Docker enforces a default profile; TORPEDO runs its containers with the
//! profile relaxed enough to fuzz, but the model keeps the full mechanism so
//! that the engine can express the default profile and tests can verify
//! filter semantics (warn vs kill enforcement modes).

use std::collections::HashSet;

/// What happens when a filtered syscall is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeccompAction {
    /// Allow the call.
    Allow,
    /// Deny with `EPERM` (Docker's default for denied calls).
    Errno,
    /// Log and allow (audit mode).
    Log,
    /// Kill the calling process.
    KillProcess,
}

/// A seccomp profile: a default action plus per-syscall overrides.
#[derive(Debug, Clone)]
pub struct SeccompProfile {
    name: String,
    default_action: SeccompAction,
    /// Syscall names with an explicit non-default action.
    overrides: HashSet<String>,
    override_action: SeccompAction,
}

impl SeccompProfile {
    /// An allow-everything profile (what `--security-opt seccomp=unconfined`
    /// gives you; TORPEDO fuzzes with this so programs are not censored).
    pub fn unconfined() -> SeccompProfile {
        SeccompProfile {
            name: "unconfined".to_string(),
            default_action: SeccompAction::Allow,
            overrides: HashSet::new(),
            override_action: SeccompAction::Errno,
        }
    }

    /// A model of Docker's default profile: allow by default, deny a list of
    /// dangerous administrative syscalls with `EPERM`.
    pub fn docker_default() -> SeccompProfile {
        let denied = [
            "reboot",
            "swapon",
            "swapoff",
            "mount",
            "umount2",
            "kexec_load",
            "init_module",
            "finit_module",
            "delete_module",
            "iopl",
            "ioperm",
            "settimeofday",
            "clock_settime",
            "ptrace",
        ];
        SeccompProfile {
            name: "docker-default".to_string(),
            default_action: SeccompAction::Allow,
            overrides: denied.iter().map(|s| s.to_string()).collect(),
            override_action: SeccompAction::Errno,
        }
    }

    /// A strict allow-list profile: deny by default, allow the given calls.
    pub fn allow_list<I, S>(name: &str, allowed: I) -> SeccompProfile
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SeccompProfile {
            name: name.to_string(),
            default_action: SeccompAction::Errno,
            overrides: allowed.into_iter().map(Into::into).collect(),
            override_action: SeccompAction::Allow,
        }
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Decide the action for `syscall`.
    pub fn check(&self, syscall: &str) -> SeccompAction {
        // Fast path for the unconfined profile TORPEDO fuzzes with: no
        // overrides means no name needs hashing on the per-syscall path.
        if self.overrides.is_empty() {
            return self.default_action;
        }
        if self.overrides.contains(syscall) {
            self.override_action
        } else {
            self.default_action
        }
    }

    /// Whether the profile blocks `syscall` (any action other than
    /// `Allow`/`Log`).
    pub fn blocks(&self, syscall: &str) -> bool {
        matches!(
            self.check(syscall),
            SeccompAction::Errno | SeccompAction::KillProcess
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfined_allows_everything() {
        let p = SeccompProfile::unconfined();
        assert_eq!(p.check("reboot"), SeccompAction::Allow);
        assert!(!p.blocks("mount"));
    }

    #[test]
    fn docker_default_denies_dangerous_calls() {
        let p = SeccompProfile::docker_default();
        assert!(p.blocks("reboot"));
        assert!(p.blocks("init_module"));
        assert!(!p.blocks("open"));
        assert!(!p.blocks("socket"));
        assert_eq!(p.check("mount"), SeccompAction::Errno);
    }

    #[test]
    fn allow_list_denies_by_default() {
        let p = SeccompProfile::allow_list("app", ["read", "write", "exit_group"]);
        assert!(!p.blocks("read"));
        assert!(p.blocks("open"));
        assert_eq!(p.name(), "app");
    }
}
