//! Namespaces: the visibility half of container isolation (§2.2.2).
//!
//! The model keeps a namespace set per container with PID translation for
//! the user namespace (`subuid`-style remapping, §2.4.2) and a small list of
//! *non-namespaced* kernel interfaces that leak host information — the
//! `ContainerLeaks`-style channels the paper reviews in §2.4.1.

use std::collections::HashMap;

/// A namespace kind, per `namespaces(7)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamespaceKind {
    /// Process-id visibility.
    Pid,
    /// Network devices, addresses, ports.
    Net,
    /// Mount points.
    Mount,
    /// UID/GID mappings.
    User,
    /// Hostname.
    Uts,
    /// System V IPC.
    Ipc,
    /// cgroup root visibility.
    Cgroup,
}

impl NamespaceKind {
    /// All modelled namespace kinds.
    pub const ALL: [NamespaceKind; 7] = [
        NamespaceKind::Pid,
        NamespaceKind::Net,
        NamespaceKind::Mount,
        NamespaceKind::User,
        NamespaceKind::Uts,
        NamespaceKind::Ipc,
        NamespaceKind::Cgroup,
    ];
}

/// Identifier of a concrete namespace instance. The host (initial) namespace
/// of every kind is id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NsId(pub u32);

/// The set of namespaces a process lives in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamespaceSet {
    spaces: HashMap<NamespaceKind, NsId>,
}

impl NamespaceSet {
    /// The host namespace set (all kinds mapped to instance 0).
    pub fn host() -> NamespaceSet {
        let mut spaces = HashMap::new();
        for kind in NamespaceKind::ALL {
            spaces.insert(kind, NsId(0));
        }
        NamespaceSet { spaces }
    }

    /// The namespace instance for `kind`.
    pub fn get(&self, kind: NamespaceKind) -> NsId {
        *self.spaces.get(&kind).expect("all kinds populated")
    }

    /// Replace the instance for `kind` (i.e. `unshare`/`setns`).
    pub fn set(&mut self, kind: NamespaceKind, id: NsId) {
        self.spaces.insert(kind, id);
    }

    /// Whether this set shares `kind` with `other` — the visibility question
    /// namespaces exist to answer.
    pub fn shares(&self, other: &NamespaceSet, kind: NamespaceKind) -> bool {
        self.get(kind) == other.get(kind)
    }

    /// Whether this is the full host set.
    pub fn is_host(&self) -> bool {
        NamespaceKind::ALL.iter().all(|&k| self.get(k) == NsId(0))
    }
}

impl Default for NamespaceSet {
    fn default() -> Self {
        Self::host()
    }
}

/// `subuid`-style UID translation for the user namespace (§2.4.2).
///
/// With remapping enabled, in-container root (UID 0) is translated to an
/// unprivileged high "machine" UID on the host; without it the mapping is
/// 1:1 and in-container root *is* host root — the privilege-escalation
/// hazard the paper describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UidMapping {
    /// First host UID of the subordinate range (e.g. 100000).
    pub host_base: u32,
    /// Length of the range.
    pub range: u32,
    /// Whether remapping is active (Docker `userns-remap`).
    pub enabled: bool,
}

impl UidMapping {
    /// Docker's default: remapping disabled (1:1 translation).
    pub fn identity() -> UidMapping {
        UidMapping {
            host_base: 0,
            range: u32::MAX,
            enabled: false,
        }
    }

    /// A typical `subuid` range starting at 100000.
    pub fn subuid() -> UidMapping {
        UidMapping {
            host_base: 100_000,
            range: 65_536,
            enabled: true,
        }
    }

    /// Translate a container UID to the host UID, or `None` if outside the
    /// subordinate range.
    pub fn to_host(&self, container_uid: u32) -> Option<u32> {
        if !self.enabled {
            return Some(container_uid);
        }
        if container_uid < self.range {
            Some(self.host_base + container_uid)
        } else {
            None
        }
    }

    /// Whether container-root maps onto host-root — true only for the unsafe
    /// identity mapping.
    pub fn container_root_is_host_root(&self) -> bool {
        self.to_host(0) == Some(0)
    }
}

/// Host interfaces that are *not* namespaced and therefore leak information
/// into containers (§2.4.1). Used by the evaluation's information-leak
/// checks and by the gVisor model (which hides them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeakChannel {
    /// `/proc/stat` exposes host-wide per-core counters.
    ProcStat,
    /// `/proc/meminfo` exposes host memory.
    ProcMeminfo,
    /// `/sys/devices/.../cache` exposes physical cache topology.
    SysCache,
    /// `/proc/loadavg` exposes host load.
    ProcLoadavg,
}

impl LeakChannel {
    /// All modelled leak channels.
    pub const ALL: [LeakChannel; 4] = [
        LeakChannel::ProcStat,
        LeakChannel::ProcMeminfo,
        LeakChannel::SysCache,
        LeakChannel::ProcLoadavg,
    ];

    /// The pseudo-filesystem path of this channel.
    pub fn path(self) -> &'static str {
        match self {
            LeakChannel::ProcStat => "/proc/stat",
            LeakChannel::ProcMeminfo => "/proc/meminfo",
            LeakChannel::SysCache => "/sys/devices/system/cpu/cpu0/cache",
            LeakChannel::ProcLoadavg => "/proc/loadavg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_set_is_host() {
        assert!(NamespaceSet::host().is_host());
    }

    #[test]
    fn unshare_separates_visibility() {
        let host = NamespaceSet::host();
        let mut container = NamespaceSet::host();
        container.set(NamespaceKind::Pid, NsId(7));
        assert!(!container.is_host());
        assert!(!container.shares(&host, NamespaceKind::Pid));
        assert!(container.shares(&host, NamespaceKind::Net));
    }

    #[test]
    fn identity_mapping_is_dangerous() {
        let m = UidMapping::identity();
        assert!(m.container_root_is_host_root());
        assert_eq!(m.to_host(42), Some(42));
    }

    #[test]
    fn subuid_mapping_remaps_root() {
        let m = UidMapping::subuid();
        assert!(!m.container_root_is_host_root());
        assert_eq!(m.to_host(0), Some(100_000));
        assert_eq!(m.to_host(65_535), Some(165_535));
        assert_eq!(m.to_host(70_000), None);
    }

    #[test]
    fn leak_channels_have_paths() {
        for ch in LeakChannel::ALL {
            assert!(ch.path().starts_with('/'));
        }
    }
}
