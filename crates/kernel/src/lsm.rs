//! Linux Security Modules: AppArmor-style mandatory access control
//! (§2.2.3).
//!
//! "By adding an enforcement policy, containerized processes can be
//! constrained using an explicit allow-list that specifies which areas of
//! the disk are within limits." Profiles are path-prefix rule lists,
//! evaluated most-specific-first, with a default decision — the shape of
//! an AppArmor profile document (§2.2.3's "allow and deny lists for file
//! paths").

/// The decision a rule or profile renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacDecision {
    /// Access permitted.
    Allow,
    /// Access denied (surfaces as `EACCES`).
    Deny,
}

/// One path rule: a prefix and its decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacRule {
    /// Path prefix the rule covers (longest prefix wins).
    pub prefix: String,
    /// Decision for covered paths.
    pub decision: MacDecision,
}

/// An AppArmor-style profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacProfile {
    name: String,
    default: MacDecision,
    rules: Vec<MacRule>,
}

impl MacProfile {
    /// The permissive profile (MAC disabled — Docker without
    /// `--security-opt apparmor=…` on a non-AppArmor host).
    pub fn unconfined() -> MacProfile {
        MacProfile {
            name: "unconfined".to_string(),
            default: MacDecision::Allow,
            rules: Vec::new(),
        }
    }

    /// A model of the `docker-default` AppArmor profile: allow the
    /// container filesystem, deny writes into the host's sensitive
    /// pseudo-filesystem areas.
    pub fn docker_default() -> MacProfile {
        MacProfile {
            name: "docker-default".to_string(),
            default: MacDecision::Allow,
            rules: vec![
                MacRule {
                    prefix: "/proc/sys".to_string(),
                    decision: MacDecision::Deny,
                },
                MacRule {
                    prefix: "/sys".to_string(),
                    decision: MacDecision::Deny,
                },
            ],
        }
    }

    /// A strict allow-list profile: deny everything outside `allowed`.
    pub fn allow_list<I, S>(name: &str, allowed: I) -> MacProfile
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        MacProfile {
            name: name.to_string(),
            default: MacDecision::Deny,
            rules: allowed
                .into_iter()
                .map(|p| MacRule {
                    prefix: p.into(),
                    decision: MacDecision::Allow,
                })
                .collect(),
        }
    }

    /// Add a rule (builder style). Later rules with longer prefixes win.
    #[must_use]
    pub fn rule(mut self, prefix: &str, decision: MacDecision) -> MacProfile {
        self.rules.push(MacRule {
            prefix: prefix.to_string(),
            decision,
        });
        self
    }

    /// Profile name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Decide access to `path`: the matching rule with the longest prefix
    /// wins; otherwise the default applies.
    pub fn check_path(&self, path: &str) -> MacDecision {
        self.rules
            .iter()
            .filter(|r| path.starts_with(r.prefix.as_str()))
            .max_by_key(|r| r.prefix.len())
            .map_or(self.default, |r| r.decision)
    }

    /// Whether the profile denies `path`.
    pub fn denies(&self, path: &str) -> bool {
        self.check_path(path) == MacDecision::Deny
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfined_allows_everything() {
        let p = MacProfile::unconfined();
        assert!(!p.denies("/proc/sys/kernel/hostname"));
        assert!(!p.denies("anything"));
    }

    #[test]
    fn docker_default_denies_host_pseudofs() {
        let p = MacProfile::docker_default();
        assert!(p.denies("/proc/sys/fs/mqueue/msg_max"));
        assert!(p.denies("/sys/devices/system/cpu"));
        assert!(!p.denies("/etc/passwd"));
        assert!(!p.denies("workfile-0"));
    }

    #[test]
    fn longest_prefix_wins() {
        let p = MacProfile::unconfined()
            .rule("/data", MacDecision::Deny)
            .rule("/data/public", MacDecision::Allow);
        assert!(p.denies("/data/secret"));
        assert!(!p.denies("/data/public/readme"));
        assert!(!p.denies("/other"));
    }

    #[test]
    fn allow_list_denies_by_default() {
        let p = MacProfile::allow_list("app", ["/app", "/tmp"]);
        assert!(!p.denies("/app/bin"));
        assert!(!p.denies("/tmp/scratch"));
        assert!(p.denies("/etc/passwd"));
        assert_eq!(p.name(), "app");
    }
}
