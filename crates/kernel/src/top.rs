//! A `top(1)`-style per-process CPU sampler, with the real tool's quirks.
//!
//! §3.4 of the paper forks a Golang `top` wrapper and works around two
//! idiosyncrasies, both reproduced here:
//!
//! 1. **Warm-up frames.** top's first frame after startup is inaccurate; the
//!    wrapper discards it. [`TopSampler::sample`] returns `None` for the
//!    first frame.
//! 2. **Short-lived blindness.** top cannot report CPU for processes that
//!    begin or end between frames — so a `modprobe` storm is invisible to
//!    the per-process view while remaining visible in `/proc/stat`. The
//!    sampler skips short-lived helpers and anything born this round.

use crate::kernel::Kernel;
use crate::process::{DaemonKind, KthreadKind, ProcessKind};
use crate::time::Usecs;

/// The filter categories the paper's wrapper selects (§3.4: "docker,
/// kworker threads, kauditd, systemd-journal, and miscellaneous kernel
/// threads"), plus the executors themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopCategory {
    /// Docker engine components (dockerd, containerd, shims).
    Docker,
    /// kworker threads.
    Kworker,
    /// The kernel audit daemon.
    Kauditd,
    /// systemd-journald.
    Journald,
    /// Miscellaneous kernel threads (ksoftirqd, kthreadd, …).
    KernelMisc,
    /// Fuzzing executor processes.
    Executor,
    /// The gVisor sentry.
    Sentry,
    /// Everything else.
    Other,
}

/// One row of a top frame.
#[derive(Debug, Clone, PartialEq)]
pub struct TopEntry {
    /// Process id.
    pub pid: u32,
    /// Process name.
    pub name: String,
    /// Filter category.
    pub category: TopCategory,
    /// CPU consumed during the frame, in percent of one core.
    pub cpu_percent: f64,
}

/// One complete top frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopSample {
    /// Rows, sorted by descending CPU.
    pub entries: Vec<TopEntry>,
}

impl TopSample {
    /// Total CPU percent attributed to `category`.
    pub fn category_percent(&self, category: TopCategory) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .map(|e| e.cpu_percent)
            .sum()
    }

    /// The entry for a specific pid, if visible.
    pub fn entry(&self, pid: u32) -> Option<&TopEntry> {
        self.entries.iter().find(|e| e.pid == pid)
    }
}

/// Stateful sampler wrapping the simulated process table.
#[derive(Debug, Clone, Default)]
pub struct TopSampler {
    warmed_up: bool,
}

impl TopSampler {
    /// A fresh sampler (its first frame will be discarded).
    pub fn new() -> TopSampler {
        TopSampler { warmed_up: false }
    }

    /// Sample per-process CPU for a frame of length `window`.
    ///
    /// Returns `None` for the warm-up frame, mirroring the modified wrapper
    /// of §3.4. Short-lived processes (usermodehelper children) and
    /// processes spawned during this frame are not reported.
    pub fn sample(&mut self, kernel: &Kernel, window: Usecs) -> Option<TopSample> {
        if !self.warmed_up {
            self.warmed_up = true;
            return None;
        }
        let mut entries: Vec<TopEntry> = kernel
            .procs
            .iter()
            .filter(|p| p.kind().long_lived() && !p.born_this_round())
            .map(|p| TopEntry {
                pid: p.pid().0,
                name: p.name().to_string(),
                category: categorize(p.kind()),
                cpu_percent: 100.0 * p.round_cpu().as_micros() as f64
                    / window.as_micros().max(1) as f64,
            })
            .collect();
        entries.sort_by(rank);
        Some(TopSample { entries })
    }
}

/// The frame ordering top reports: descending CPU, pid as tiebreak.
fn rank(a: &TopEntry, b: &TopEntry) -> std::cmp::Ordering {
    b.cpu_percent
        .partial_cmp(&a.cpu_percent)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.pid.cmp(&b.pid))
}

/// Merge per-partition top frames into one canonical frame.
///
/// Partitioned kernels boot identically, so long-lived daemons carry the
/// same pid *and* name in every partition — those rows are summed, exactly
/// as one shared kernel would have accumulated their CPU. Executor
/// processes are named per container (`syz-executor-<name>`), so rows from
/// different partitions never collide even when their pids do. Rows merge
/// keyed on `(pid, name)` in first-seen order (callers pass frames in
/// stable partition-index order) and the result is re-sorted with the
/// sampler's own comparator; the sort is stable, so a single-frame merge
/// passes through byte-identical.
///
/// Returns `None` when every input frame is a warm-up `None`.
pub fn merge_frames(frames: Vec<Option<TopSample>>) -> Option<TopSample> {
    let mut merged: Option<Vec<TopEntry>> = None;
    for frame in frames.into_iter().flatten() {
        let entries = merged.get_or_insert_with(Vec::new);
        for entry in frame.entries {
            match entries
                .iter_mut()
                .find(|e| e.pid == entry.pid && e.name == entry.name)
            {
                Some(existing) => existing.cpu_percent += entry.cpu_percent,
                None => entries.push(entry),
            }
        }
    }
    let mut entries = merged?;
    entries.sort_by(rank);
    Some(TopSample { entries })
}

fn categorize(kind: &ProcessKind) -> TopCategory {
    match kind {
        ProcessKind::Daemon(DaemonKind::Dockerd)
        | ProcessKind::Daemon(DaemonKind::Containerd)
        | ProcessKind::Daemon(DaemonKind::ContainerdShim) => TopCategory::Docker,
        ProcessKind::Daemon(DaemonKind::Kauditd) | ProcessKind::Daemon(DaemonKind::Auditd) => {
            TopCategory::Kauditd
        }
        ProcessKind::Daemon(DaemonKind::Journald) => TopCategory::Journald,
        ProcessKind::Daemon(DaemonKind::GvisorSentry) => TopCategory::Sentry,
        ProcessKind::KernelThread(KthreadKind::Kworker) => TopCategory::Kworker,
        ProcessKind::KernelThread(_) => TopCategory::KernelMisc,
        ProcessKind::Executor { .. } => TopCategory::Executor,
        ProcessKind::Daemon(DaemonKind::Cron) | ProcessKind::Noise => TopCategory::Other,
        ProcessKind::Helper(_) => TopCategory::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupTree;
    use crate::process::HelperKind;

    #[test]
    fn first_frame_is_warmup() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        let mut sampler = TopSampler::new();
        assert!(sampler.sample(&k, Usecs::from_secs(1)).is_none());
        assert!(sampler.sample(&k, Usecs::from_secs(1)).is_some());
    }

    #[test]
    fn short_lived_helpers_are_invisible() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        // Advance one round so boot daemons are no longer "born this round".
        k.finish_round(&[0]);
        k.begin_round(Usecs::from_secs(1));
        let helper = k.procs.spawn(
            "modprobe",
            ProcessKind::Helper(HelperKind::Modprobe),
            CgroupTree::ROOT,
        );
        k.procs.charge_cpu(helper, Usecs(900_000));
        let mut sampler = TopSampler::new();
        let _ = sampler.sample(&k, Usecs::from_secs(1));
        let frame = sampler.sample(&k, Usecs::from_secs(1)).unwrap();
        assert!(
            frame.entry(helper.0).is_none(),
            "modprobe must be invisible"
        );
    }

    #[test]
    fn daemons_are_visible_with_percentages() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        k.begin_round(Usecs::from_secs(1));
        let kauditd = k.boot.kauditd;
        k.procs.charge_cpu(kauditd, Usecs(250_000));
        let mut sampler = TopSampler::new();
        let _ = sampler.sample(&k, Usecs::from_secs(1));
        let frame = sampler.sample(&k, Usecs::from_secs(1)).unwrap();
        let entry = frame.entry(kauditd.0).expect("kauditd visible");
        assert!((entry.cpu_percent - 25.0).abs() < 0.1);
        assert_eq!(entry.category, TopCategory::Kauditd);
        assert!(frame.category_percent(TopCategory::Kauditd) >= 25.0);
    }

    #[test]
    fn entries_sorted_by_cpu_desc() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        k.begin_round(Usecs::from_secs(1));
        k.procs.charge_cpu(k.boot.journald, Usecs(100_000));
        k.procs.charge_cpu(k.boot.dockerd, Usecs(300_000));
        let mut sampler = TopSampler::new();
        let _ = sampler.sample(&k, Usecs::from_secs(1));
        let frame = sampler.sample(&k, Usecs::from_secs(1)).unwrap();
        let dockerd_pos = frame
            .entries
            .iter()
            .position(|e| e.pid == k.boot.dockerd.0)
            .unwrap();
        let journald_pos = frame
            .entries
            .iter()
            .position(|e| e.pid == k.boot.journald.0)
            .unwrap();
        assert!(dockerd_pos < journald_pos);
    }

    #[test]
    fn merge_sums_daemons_and_keeps_executors_apart() {
        let entry = |pid: u32, name: &str, category, cpu_percent| TopEntry {
            pid,
            name: name.to_string(),
            category,
            cpu_percent,
        };
        // Two partitions that booted identically: dockerd has the same pid
        // and name in both; each hosts its own distinctly-named executor
        // that happens to share a pid.
        let a = TopSample {
            entries: vec![
                entry(40, "syz-executor-fuzz-0", TopCategory::Executor, 90.0),
                entry(1, "dockerd", TopCategory::Docker, 3.0),
            ],
        };
        let b = TopSample {
            entries: vec![
                entry(40, "syz-executor-fuzz-1", TopCategory::Executor, 80.0),
                entry(1, "dockerd", TopCategory::Docker, 2.0),
            ],
        };
        let merged = merge_frames(vec![Some(a), Some(b)]).unwrap();
        assert_eq!(merged.entries.len(), 3);
        assert_eq!(merged.entries[0].name, "syz-executor-fuzz-0");
        assert_eq!(merged.entries[1].name, "syz-executor-fuzz-1");
        let dockerd = merged.entry(1).unwrap();
        assert_eq!(dockerd.name, "dockerd");
        assert!((dockerd.cpu_percent - 5.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_of_one_frame_is_identity_and_all_warmups_is_none() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        k.begin_round(Usecs::from_secs(1));
        k.procs.charge_cpu(k.boot.dockerd, Usecs(300_000));
        let mut sampler = TopSampler::new();
        let _ = sampler.sample(&k, Usecs::from_secs(1));
        let frame = sampler.sample(&k, Usecs::from_secs(1)).unwrap();
        assert_eq!(
            merge_frames(vec![Some(frame.clone())]),
            Some(frame),
            "single-partition merge is byte-identical passthrough"
        );
        assert_eq!(merge_frames(vec![None, None]), None);
        assert_eq!(merge_frames(Vec::new()), None);
    }

    #[test]
    fn processes_born_this_round_are_invisible() {
        let mut k = Kernel::with_defaults();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        k.begin_round(Usecs::from_secs(1));
        let newborn = k.procs.spawn(
            "fresh-daemon",
            ProcessKind::Daemon(DaemonKind::Cron),
            CgroupTree::ROOT,
        );
        let mut sampler = TopSampler::new();
        let _ = sampler.sample(&k, Usecs::from_secs(1));
        let frame = sampler.sample(&k, Usecs::from_secs(1)).unwrap();
        assert!(frame.entry(newborn.0).is_none());
    }
}
