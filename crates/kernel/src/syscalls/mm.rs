//! Memory-management syscall semantics.
//!
//! Memory charges go through the cgroup memory controller, so the memory
//! oracle (future work §5.1 of the paper, implemented in `torpedo-oracle`)
//! has real limits to observe.

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::time::Usecs;

use super::{ExecContext, Sem, SyscallRequest};

/// Largest mapping honoured per call.
const MAX_MAP: u64 = 64 << 20;

/// Memory-pressure fraction of the cgroup limit above which a successful
/// allocation still wakes kswapd (background writeback reclaim).
const PRESSURE_RECLAIM: f64 = 0.85;

/// Every syscall name [`handle`] owns — the dispatch jump table routes these
/// numbers here without probing the other modules. Must stay in sync with
/// the `match` arms below (the kernel's routing tests enforce it).
pub(crate) const NAMES: &[&str] = &[
    "mmap",
    "munmap",
    "mprotect",
    "brk",
    "mremap",
    "madvise",
    "mlock",
    "munlock",
    "getrandom",
    "futex",
];

pub(crate) fn handle(
    k: &mut Kernel,
    ctx: &ExecContext,
    name: &str,
    req: &SyscallRequest<'_>,
) -> Option<Sem> {
    let args = req.args;
    Some(match name {
        "mmap" => {
            let len = args[1];
            if len == 0 {
                return Some(Sem::err(Errno::EINVAL).cost(1, 3).branch("mmap_einval"));
            }
            let len = len.min(MAX_MAP);
            match k.cgroups.charge_memory(ctx.cgroup, len as i64) {
                Ok(()) => {
                    // Nearing the limit wakes kswapd: background writeback
                    // reclaim on a kworker, charged to the root cgroup.
                    if k.cgroups.memory_pressure(ctx.cgroup) > PRESSURE_RECLAIM {
                        k.memory_reclaim(
                            ctx.pid,
                            ctx.cgroup,
                            &ctx.cpuset,
                            len,
                            ctx.policy.host_deferrals,
                            "mmap",
                        );
                    }
                    Sem::ok(0x7f00_0000_0000u64 as i64)
                        .cost(2, 9 + len / (4 << 20))
                        .branch("mmap_ok")
                }
                Err(_) => {
                    // The allocator runs direct reclaim trying to satisfy the
                    // charge before giving up; the flush work escapes to
                    // kworkers while the caller stalls in iowait.
                    let wait = k.memory_reclaim(
                        ctx.pid,
                        ctx.cgroup,
                        &ctx.cpuset,
                        len,
                        ctx.policy.host_deferrals,
                        "mmap",
                    );
                    Sem::err(Errno::ENOMEM)
                        .cost(2, 7)
                        .block(wait)
                        .branch("mmap_enomem")
                }
            }
        }
        "munmap" => {
            let len = args[1].min(MAX_MAP);
            if len == 0 {
                Sem::err(Errno::EINVAL).cost(1, 2).branch("munmap_einval")
            } else {
                let _ = k.cgroups.charge_memory(ctx.cgroup, -(len as i64));
                Sem::ok(0).cost(1, 6).branch("munmap_ok")
            }
        }
        "mprotect" => {
            if !args[0].is_multiple_of(4096) {
                Sem::err(Errno::EINVAL)
                    .cost(1, 2)
                    .branch("mprotect_unaligned")
            } else {
                Sem::ok(0).cost(1, 5).branch("mprotect_ok")
            }
        }
        "brk" => Sem::ok(args[0] as i64).cost(1, 4).branch("brk"),
        "mremap" => {
            let new_len = args[2].min(MAX_MAP);
            if new_len == 0 {
                Sem::err(Errno::EINVAL).cost(1, 2).branch("mremap_einval")
            } else {
                match k.cgroups.charge_memory(ctx.cgroup, new_len as i64 / 4) {
                    Ok(()) => Sem::ok(args[0] as i64).cost(2, 8).branch("mremap_ok"),
                    Err(_) => Sem::err(Errno::ENOMEM).cost(1, 5).branch("mremap_enomem"),
                }
            }
        }
        "madvise" => {
            if args[2] > 25 {
                Sem::err(Errno::EINVAL).cost(1, 2).branch("madvise_einval")
            } else {
                Sem::ok(0).cost(1, 4).branch("madvise_ok")
            }
        }
        "mlock" => {
            let len = args[1].min(MAX_MAP);
            match k.cgroups.charge_memory(ctx.cgroup, len as i64) {
                Ok(()) => Sem::ok(0).cost(2, 10 + len / (8 << 20)).branch("mlock_ok"),
                Err(_) => {
                    // mlock under pressure also takes the direct-reclaim
                    // path: pages must be written back before pinning fails.
                    let wait = k.memory_reclaim(
                        ctx.pid,
                        ctx.cgroup,
                        &ctx.cpuset,
                        len,
                        ctx.policy.host_deferrals,
                        "mlock",
                    );
                    Sem::err(Errno::ENOMEM)
                        .cost(1, 5)
                        .block(wait)
                        .branch("mlock_enomem")
                }
            }
        }
        "munlock" => {
            let len = args[1].min(MAX_MAP);
            let _ = k.cgroups.charge_memory(ctx.cgroup, -(len as i64));
            Sem::ok(0).cost(1, 5).branch("munlock_ok")
        }
        "getrandom" => {
            let len = args[1].min(1 << 16);
            Sem::ok(len as i64)
                .cost(1, 3 + len / 4096)
                .branch("getrandom")
        }
        "futex" => {
            // FUTEX_WAIT on a value that never changes: brief block, EAGAIN.
            if args[1] & 0x7f == 0 {
                Sem::err(Errno::EAGAIN)
                    .cost(1, 4)
                    .block(Usecs::from_millis(5))
                    .branch("futex_wait")
            } else {
                Sem::ok(0).cost(1, 4).branch("futex_wake")
            }
        }
        _ => return None,
    })
}
