//! Process, signal and identity syscall semantics.
//!
//! Hosts the coredump vectors of Table 4.2 — `rt_sigreturn` (any usage →
//! SIGSEGV) and `rseq` (invalid arguments → SIGSEGV) — plus the audit
//! channel triggered by credential changes, and the blocking calls the
//! paper adds to its generation denylist (`pause`, `nanosleep`, `poll`).

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::process::Pid;
use crate::signal::Signal;
use crate::time::Usecs;

use super::{ExecContext, Sem, SyscallRequest};

/// How long "forever" blocks within a round: longer than any sane window.
const FOREVER: Usecs = Usecs::from_secs(3600);

/// Every syscall name [`handle`] owns — the dispatch jump table routes these
/// numbers here without probing the other modules. Must stay in sync with
/// the `match` arms below (the kernel's routing tests enforce it).
pub(crate) const NAMES: &[&str] = &[
    "getpid",
    "getppid",
    "gettid",
    "getuid",
    "geteuid",
    "setuid",
    "setgid",
    "getrlimit",
    "setrlimit",
    "prlimit64",
    "alarm",
    "pause",
    "nanosleep",
    "clock_nanosleep",
    "sched_yield",
    "kill",
    "tgkill",
    "rt_sigaction",
    "rt_sigprocmask",
    "rt_sigreturn",
    "rseq",
    "exit",
    "exit_group",
    "kcmp",
    "capget",
    "capset",
    "prctl",
    "personality",
    "ptrace",
    "uname",
    "sysinfo",
    "times",
    "getcpu",
    "gettimeofday",
    "clock_gettime",
    "getitimer",
    "fork",
];

pub(crate) fn handle(
    k: &mut Kernel,
    ctx: &ExecContext,
    name: &str,
    req: &SyscallRequest<'_>,
) -> Option<Sem> {
    let args = req.args;
    Some(match name {
        "getpid" => Sem::ok(ctx.pid.0 as i64).cost(1, 2).branch("getpid"),
        "getppid" | "gettid" | "getuid" | "geteuid" => Sem::ok(0).cost(1, 2).branch("identity"),
        "setuid" | "setgid" => {
            // Credential changes are audited; the audit daemons do the work
            // in their own cgroups (§2.4.3 "deferring work to other process
            // cgroups").
            if ctx.policy.host_deferrals {
                k.audit_event(ctx.pid, ctx.cgroup, &ctx.cpuset, "setuid");
            }
            if args[0] != 0 && args[0] < 0x10000 {
                Sem::ok(0).cost(2, 6).branch("setuid_ok")
            } else {
                Sem::err(Errno::EPERM).cost(1, 4).branch("setuid_eperm")
            }
        }
        "getrlimit" => {
            if args[0] > 16 {
                Sem::err(Errno::EINVAL)
                    .cost(1, 2)
                    .branch("getrlimit_einval")
            } else {
                Sem::ok(0).cost(1, 3).branch("getrlimit_ok")
            }
        }
        "setrlimit" | "prlimit64" => {
            let resource = args[if name == "prlimit64" { 1 } else { 0 }];
            if resource > 16 {
                Sem::err(Errno::EINVAL)
                    .cost(1, 2)
                    .branch("setrlimit_einval")
            } else {
                // RLIMIT_FSIZE = 1 on Linux.
                if resource == 1 {
                    let new_limit = args[if name == "prlimit64" { 2 } else { 1 }];
                    if let Some(p) = k.procs.get_mut(ctx.pid) {
                        p.rlimits_mut().fsize = new_limit.max(4096);
                    }
                }
                Sem::ok(0).cost(1, 4).branch("setrlimit_ok")
            }
        }
        "alarm" => Sem::ok(0).cost(1, 2).branch("alarm"),
        "pause" => Sem::err(Errno::EINTR)
            .cost(1, 2)
            .block(FOREVER)
            .branch("pause"),
        "nanosleep" | "clock_nanosleep" => Sem::ok(0)
            .cost(1, 3)
            .block(Usecs::from_millis(50))
            .branch("nanosleep"),
        "sched_yield" => Sem::ok(0).cost(0, 2).branch("sched_yield"),
        "kill" | "tgkill" => {
            let target = args[0] as u32;
            let signum = args[if name == "tgkill" { 2 } else { 1 }] as u8;
            if target == ctx.pid.0 || target == 0 {
                match decode_signal(signum) {
                    Some(sig) if sig.fatal_by_default() => {
                        Sem::ok(0).cost(1, 5).fatal(sig).branch("kill_self_fatal")
                    }
                    Some(_) => Sem::ok(0).cost(1, 4).branch("kill_self_ignored"),
                    None => Sem::err(Errno::EINVAL).cost(1, 2).branch("kill_einval"),
                }
            } else if k.procs.get(Pid(target)).is_some() {
                // Cross-process signalling is namespaced away.
                Sem::err(Errno::EPERM).cost(1, 4).branch("kill_eperm")
            } else {
                Sem::err(Errno::ESRCH).cost(1, 3).branch("kill_esrch")
            }
        }
        "rt_sigaction" | "rt_sigprocmask" => {
            if args[0] == 0 || args[0] > 64 {
                Sem::err(Errno::EINVAL)
                    .cost(1, 2)
                    .branch("sigaction_einval")
            } else {
                Sem::ok(0).cost(1, 3).branch("sigaction_ok")
            }
        }
        "rt_sigreturn" => {
            // Called outside a signal frame, the restored context is garbage:
            // the kernel delivers SIGSEGV → coredump (Table 4.2 "any usage").
            Sem::ok(0)
                .cost(1, 4)
                .fatal(Signal::SIGSEGV)
                .branch("rt_sigreturn_segv")
        }
        "rseq" => {
            // Invalid arguments (unaligned struct or unknown flags) kill the
            // caller with SIGSEGV (Table 4.2).
            if !args[0].is_multiple_of(32) || args[2] > 1 {
                Sem::ok(0)
                    .cost(1, 4)
                    .fatal(Signal::SIGSEGV)
                    .branch("rseq_segv")
            } else {
                Sem::ok(0).cost(1, 4).branch("rseq_ok")
            }
        }
        "exit" | "exit_group" => {
            // Graceful exit: no coredump; the executor restarts the process.
            k.procs.exit(ctx.pid);
            Sem::ok(0).cost(1, 3).branch("exit")
        }
        "kcmp" => {
            let pid1 = args[0] as u32;
            let pid2 = args[1] as u32;
            if args[2] > 8 {
                Sem::err(Errno::EINVAL).cost(1, 2).branch("kcmp_einval")
            } else if k.procs.get(Pid(pid1)).is_none() || k.procs.get(Pid(pid2)).is_none() {
                Sem::err(Errno::ESRCH).cost(1, 3).branch("kcmp_esrch")
            } else {
                Sem::ok(0).cost(1, 4).branch("kcmp_ok")
            }
        }
        "capget" | "capset" | "prctl" | "personality" => Sem::ok(0).cost(1, 3).branch("cred_misc"),
        "ptrace" => Sem::err(Errno::EPERM).cost(1, 3).branch("ptrace_eperm"),
        "uname" | "sysinfo" | "times" | "getcpu" | "gettimeofday" | "clock_gettime"
        | "getitimer" => Sem::ok(0).cost(1, 2).branch("info"),
        "fork" => {
            // Fork inside the container: allowed, cheap model (no new
            // schedulable entity — the executor is single-threaded here).
            Sem::ok((ctx.pid.0 + 1000) as i64)
                .cost(4, 20)
                .branch("fork")
        }
        _ => return None,
    })
}

fn decode_signal(signum: u8) -> Option<Signal> {
    Some(match signum {
        1 => Signal::SIGHUP,
        2 => Signal::SIGINT,
        3 => Signal::SIGQUIT,
        4 => Signal::SIGILL,
        5 => Signal::SIGTRAP,
        6 => Signal::SIGABRT,
        7 => Signal::SIGBUS,
        8 => Signal::SIGFPE,
        9 => Signal::SIGKILL,
        11 => Signal::SIGSEGV,
        13 => Signal::SIGPIPE,
        14 => Signal::SIGALRM,
        15 => Signal::SIGTERM,
        17 => Signal::SIGCHLD,
        24 => Signal::SIGXCPU,
        25 => Signal::SIGXFSZ,
        31 => Signal::SIGSYS,
        _ => return None,
    })
}
