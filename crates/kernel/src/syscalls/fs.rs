//! Filesystem syscall semantics.
//!
//! Hosts three of the Table 4.2 adversarial vectors: the `sync` family
//! (kworker flush deferral), `fallocate`/`ftruncate` beyond `RLIMIT_FSIZE`
//! (SIGXFSZ → coredump), and ordinary `write` beyond the limit.

use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::signal::Signal;
use crate::time::Usecs;
use crate::vfs::{Fd, FdObject};

use super::{ExecContext, Sem, SyscallRequest};

/// Largest buffer length honoured per call (fuzzers pass wild lengths).
const MAX_XFER: u64 = 1 << 20;

/// Every syscall name [`handle`] owns — the dispatch jump table routes these
/// numbers here without probing the other modules. Must stay in sync with
/// the `match` arms below (the kernel's routing tests enforce it).
pub(crate) const NAMES: &[&str] = &[
    "open",
    "openat",
    "creat",
    "close",
    "read",
    "pread64",
    "write",
    "pwrite64",
    "lseek",
    "fallocate",
    "ftruncate",
    "truncate",
    "sync",
    "syncfs",
    "fsync",
    "fdatasync",
    "msync",
    "readlink",
    "chmod",
    "fchmod",
    "setxattr",
    "getxattr",
    "listxattr",
    "removexattr",
    "inotify_init",
    "inotify_add_watch",
    "ioctl",
    "dup",
    "dup2",
    "dup3",
    "stat",
    "access",
    "mkdir",
    "rmdir",
    "unlink",
    "rename",
    "getdents",
    "flock",
    "fcntl",
    "memfd_create",
    "fstat",
];

pub(crate) fn handle(
    k: &mut Kernel,
    ctx: &ExecContext,
    name: &str,
    req: &SyscallRequest<'_>,
) -> Option<Sem> {
    let args = req.args;
    Some(match name {
        "open" | "openat" => {
            let path_idx = if name == "openat" { 1 } else { 0 };
            let flags = args[path_idx + 1];
            match req.paths[path_idx] {
                None => Sem::err(Errno::EFAULT).cost(1, 4).branch("open_efault"),
                Some(path) => match k.vfs.resolve(path) {
                    Ok(meta) => {
                        let ino = meta.ino;
                        let limit = proc_nofile(k, ctx);
                        match k
                            .fd_table(ctx.pid)
                            .alloc(FdObject::File { ino, offset: 0 }, limit)
                        {
                            Ok(fd) => Sem::ok(fd.0 as i64).cost(3, 12).branch("open_ok"),
                            Err(e) => Sem::err(e).cost(2, 8).branch("open_emfile"),
                        }
                    }
                    Err(Errno::ENOENT) if flags & 0x40 != 0 => {
                        // O_CREAT
                        let ino = k.vfs.create(path, args[path_idx + 2] as u32 & 0o7777);
                        let limit = proc_nofile(k, ctx);
                        match k
                            .fd_table(ctx.pid)
                            .alloc(FdObject::File { ino, offset: 0 }, limit)
                        {
                            Ok(fd) => Sem::ok(fd.0 as i64).cost(4, 18).branch("open_creat"),
                            Err(e) => Sem::err(e).cost(2, 8).branch("open_emfile"),
                        }
                    }
                    Err(e) => Sem::err(e).cost(2, 9).branch("open_err"),
                },
            }
        }
        "creat" => match req.paths[0] {
            None => Sem::err(Errno::EFAULT).cost(1, 4).branch("creat_efault"),
            Some(path) => {
                let ino = k.vfs.create(path, args[1] as u32 & 0o7777);
                k.vfs.dirty(512);
                k.note_io_activity(ctx.pid, ctx.core);
                let limit = proc_nofile(k, ctx);
                match k
                    .fd_table(ctx.pid)
                    .alloc(FdObject::File { ino, offset: 0 }, limit)
                {
                    Ok(fd) => Sem::ok(fd.0 as i64).cost(4, 20).branch("creat_ok"),
                    Err(e) => Sem::err(e).cost(2, 8).branch("creat_emfile"),
                }
            }
        },
        "close" => match k.fd_table(ctx.pid).close(Fd(args[0] as i32)) {
            Ok(()) => Sem::ok(0).cost(1, 3).branch("close_ok"),
            Err(e) => Sem::err(e).cost(1, 2).branch("close_ebadf"),
        },
        "read" | "pread64" => {
            let len = args[2].min(MAX_XFER);
            match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
                Some(FdObject::File { .. }) => Sem::ok(len.min(64) as i64)
                    .cost(2, 6 + len / 65536)
                    .branch("read_file"),
                Some(FdObject::Inotify) => {
                    // No events pending: block briefly, then nothing.
                    Sem::err(Errno::EAGAIN)
                        .cost(1, 4)
                        .block(Usecs::from_millis(10))
                        .branch("read_inotify")
                }
                Some(_) => Sem::ok(0).cost(1, 5).branch("read_other"),
                None => Sem::err(Errno::EBADF).cost(1, 2).branch("read_ebadf"),
            }
        }
        "write" | "pwrite64" => {
            let len = args[2].min(MAX_XFER);
            match k.fd_table(ctx.pid).get(Fd(args[0] as i32)).cloned() {
                Some(FdObject::File { ino, offset }) => {
                    let fsize_limit = proc_fsize(k, ctx);
                    if offset + len > fsize_limit {
                        // SIGXFSZ: default action terminates with coredump.
                        Sem::err(Errno::EFBIG)
                            .cost(2, 6)
                            .fatal(Signal::SIGXFSZ)
                            .branch("write_sigxfsz")
                    } else {
                        if let Some(meta) = k.vfs.by_ino_mut(ino) {
                            meta.size = meta.size.max(offset + len);
                        }
                        if let Some(FdObject::File { offset, .. }) =
                            k.fd_table(ctx.pid).get_mut(Fd(args[0] as i32))
                        {
                            *offset += len;
                        }
                        k.vfs.dirty(len);
                        k.note_io_activity(ctx.pid, ctx.core);
                        k.cgroups.charge_io(ctx.cgroup, len);
                        Sem::ok(len as i64)
                            .cost(3, 8 + len / 32768)
                            .branch("write_ok")
                    }
                }
                Some(_) => Sem::ok(len.min(4096) as i64)
                    .cost(2, 7)
                    .branch("write_other"),
                None => Sem::err(Errno::EBADF).cost(1, 2).branch("write_ebadf"),
            }
        }
        "lseek" => match k.fd_table(ctx.pid).get_mut(Fd(args[0] as i32)) {
            Some(FdObject::File { offset, .. }) => {
                let whence = args[2];
                if whence > 4 {
                    Sem::err(Errno::EINVAL).cost(1, 2).branch("lseek_einval")
                } else {
                    *offset = match whence {
                        0 => args[1],
                        1 => offset.wrapping_add(args[1]),
                        _ => args[1],
                    };
                    Sem::ok(*offset as i64).cost(1, 3).branch("lseek_ok")
                }
            }
            Some(_) => Sem::err(Errno::ESPIPE).cost(1, 2).branch("lseek_espipe"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("lseek_ebadf"),
        },
        "fallocate" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)).cloned() {
            Some(FdObject::File { ino, .. }) => {
                let offset = args[2];
                let len = args[3];
                let fsize_limit = proc_fsize(k, ctx);
                if len == 0 {
                    Sem::err(Errno::EINVAL)
                        .cost(1, 3)
                        .branch("fallocate_einval")
                } else if offset.saturating_add(len) > fsize_limit {
                    // "argument exceeds max" → SIGXFSZ → coredump (Table 4.2).
                    Sem::err(Errno::EFBIG)
                        .cost(2, 5)
                        .fatal(Signal::SIGXFSZ)
                        .branch("fallocate_sigxfsz")
                } else {
                    if let Some(meta) = k.vfs.by_ino_mut(ino) {
                        meta.size = meta.size.max(offset + len);
                    }
                    k.vfs.dirty(len.min(MAX_XFER));
                    k.note_io_activity(ctx.pid, ctx.core);
                    Sem::ok(0).cost(3, 15).branch("fallocate_ok")
                }
            }
            Some(_) => Sem::err(Errno::ESPIPE)
                .cost(1, 3)
                .branch("fallocate_espipe"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("fallocate_ebadf"),
        },
        "ftruncate" | "truncate" => {
            let len = args[1];
            let fsize_limit = proc_fsize(k, ctx);
            if len > fsize_limit {
                Sem::err(Errno::EFBIG)
                    .cost(2, 5)
                    .fatal(Signal::SIGXFSZ)
                    .branch("truncate_sigxfsz")
            } else if name == "ftruncate" {
                match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
                    Some(FdObject::File { .. }) => {
                        k.vfs.dirty(4096);
                        k.note_io_activity(ctx.pid, ctx.core);
                        Sem::ok(0).cost(2, 10).branch("ftruncate_ok")
                    }
                    Some(_) => Sem::err(Errno::EINVAL)
                        .cost(1, 3)
                        .branch("ftruncate_einval"),
                    None => Sem::err(Errno::EBADF).cost(1, 2).branch("ftruncate_ebadf"),
                }
            } else {
                match req.paths[0] {
                    Some(path) if k.vfs.lookup(path).is_some() => {
                        k.vfs.dirty(4096);
                        Sem::ok(0).cost(2, 10).branch("truncate_ok")
                    }
                    Some(_) => Sem::err(Errno::ENOENT).cost(1, 4).branch("truncate_enoent"),
                    None => Sem::err(Errno::EFAULT).cost(1, 2).branch("truncate_efault"),
                }
            }
        }
        "sync" | "syncfs" => {
            let blocked = k.sync_flush(
                ctx.pid,
                ctx.cgroup,
                &ctx.cpuset,
                1.0,
                ctx.policy.host_deferrals,
            );
            Sem::ok(0).cost(2, 12).block(blocked).branch("sync")
        }
        "fsync" | "fdatasync" | "msync" => {
            let valid = name == "msync"
                || matches!(
                    k.fd_table(ctx.pid).get(Fd(args[0] as i32)),
                    Some(FdObject::File { .. })
                );
            if valid {
                let blocked = k.sync_flush(
                    ctx.pid,
                    ctx.cgroup,
                    &ctx.cpuset,
                    0.15,
                    ctx.policy.host_deferrals,
                );
                Sem::ok(0).cost(2, 10).block(blocked).branch("fsync_ok")
            } else {
                Sem::err(Errno::EBADF).cost(1, 2).branch("fsync_ebadf")
            }
        }
        "readlink" => match req.paths[0] {
            None => Sem::err(Errno::EFAULT).cost(1, 3).branch("readlink_efault"),
            Some(path) => match k.vfs.resolve(path) {
                Ok(meta) if meta.symlink => {
                    Sem::ok(path.len() as i64).cost(2, 8).branch("readlink_ok")
                }
                Ok(_) => Sem::err(Errno::EINVAL)
                    .cost(1, 5)
                    .branch("readlink_notlink"),
                Err(e) => Sem::err(e)
                    .cost(1, 6 + path.len() as u64 / 64)
                    .branch("readlink_err"),
            },
        },
        "chmod" | "fchmod" => {
            let ok = if name == "chmod" {
                req.paths[0].is_some_and(|p| k.vfs.lookup(p).is_some())
            } else {
                matches!(
                    k.fd_table(ctx.pid).get(Fd(args[0] as i32)),
                    Some(FdObject::File { .. })
                )
            };
            if ok {
                Sem::ok(0).cost(2, 7).branch("chmod_ok")
            } else if name == "chmod" {
                Sem::err(Errno::ENOENT).cost(1, 4).branch("chmod_enoent")
            } else {
                Sem::err(Errno::EBADF).cost(1, 2).branch("chmod_ebadf")
            }
        }
        "setxattr" => match req.paths[0] {
            Some(path) => match req.paths[1] {
                Some(key) => {
                    if let Some(meta) = k.vfs.lookup_mut(path) {
                        meta.xattrs
                            .insert(key.to_string(), vec![0u8; args[3].min(256) as usize]);
                        k.vfs.dirty(256);
                        Sem::ok(0).cost(3, 11).branch("setxattr_ok")
                    } else {
                        Sem::err(Errno::ENOENT).cost(1, 5).branch("setxattr_enoent")
                    }
                }
                None => Sem::err(Errno::EFAULT).cost(1, 2).branch("setxattr_efault"),
            },
            None => Sem::err(Errno::EFAULT).cost(1, 2).branch("setxattr_efault"),
        },
        "getxattr" => match (req.paths[0], req.paths[1]) {
            (Some(path), Some(key)) => match k.vfs.lookup(path) {
                Some(meta) => match meta.xattrs.get(key) {
                    Some(v) if args[3] == 0 => {
                        Sem::ok(v.len() as i64).cost(2, 7).branch("getxattr_size")
                    }
                    Some(v) if (args[3] as usize) < v.len() => {
                        Sem::err(Errno::ERANGE).cost(2, 7).branch("getxattr_erange")
                    }
                    Some(v) => Sem::ok(v.len() as i64).cost(2, 8).branch("getxattr_ok"),
                    None => Sem::err(Errno::ENODATA)
                        .cost(1, 6)
                        .branch("getxattr_enodata"),
                },
                None => Sem::err(Errno::ENOENT).cost(1, 5).branch("getxattr_enoent"),
            },
            _ => Sem::err(Errno::EFAULT).cost(1, 2).branch("getxattr_efault"),
        },
        "listxattr" | "removexattr" => match req.paths[0] {
            Some(path) if k.vfs.lookup(path).is_some() => {
                Sem::ok(0).cost(2, 7).branch("xattr_list_ok")
            }
            Some(_) => Sem::err(Errno::ENOENT)
                .cost(1, 4)
                .branch("xattr_list_enoent"),
            None => Sem::err(Errno::EFAULT)
                .cost(1, 2)
                .branch("xattr_list_efault"),
        },
        "inotify_init" => {
            let limit = proc_nofile(k, ctx);
            match k.fd_table(ctx.pid).alloc(FdObject::Inotify, limit) {
                Ok(fd) => Sem::ok(fd.0 as i64).cost(2, 9).branch("inotify_ok"),
                Err(e) => Sem::err(e).cost(1, 4).branch("inotify_emfile"),
            }
        }
        "inotify_add_watch" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
            Some(FdObject::Inotify) => Sem::ok(1).cost(2, 8).branch("inotify_watch_ok"),
            Some(_) => Sem::err(Errno::EINVAL)
                .cost(1, 3)
                .branch("inotify_watch_einval"),
            None => Sem::err(Errno::EBADF)
                .cost(1, 2)
                .branch("inotify_watch_ebadf"),
        },
        "ioctl" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
            Some(FdObject::File { .. }) => match args[1] {
                0x8008_7601 => Sem::ok(0).cost(2, 8).branch("ioctl_getversion"),
                _ => Sem::err(Errno::EINVAL).cost(1, 6).branch("ioctl_einval"),
            },
            Some(_) => Sem::err(Errno::EINVAL).cost(1, 4).branch("ioctl_notty"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("ioctl_ebadf"),
        },
        "dup" | "dup2" | "dup3" => {
            let obj = k.fd_table(ctx.pid).get(Fd(args[0] as i32)).cloned();
            match obj {
                Some(obj) => {
                    let limit = proc_nofile(k, ctx);
                    match k.fd_table(ctx.pid).alloc(obj, limit) {
                        Ok(fd) => Sem::ok(fd.0 as i64).cost(1, 4).branch("dup_ok"),
                        Err(e) => Sem::err(e).cost(1, 3).branch("dup_emfile"),
                    }
                }
                None => Sem::err(Errno::EBADF).cost(1, 2).branch("dup_ebadf"),
            }
        }
        "stat" | "access" => match req.paths[0] {
            Some(path) if k.vfs.lookup(path).is_some() => Sem::ok(0).cost(2, 7).branch("stat_ok"),
            Some(_) => Sem::err(Errno::ENOENT).cost(1, 5).branch("stat_enoent"),
            None => Sem::err(Errno::EFAULT).cost(1, 2).branch("stat_efault"),
        },
        "fstat" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
            Some(_) => Sem::ok(0).cost(1, 4).branch("fstat_ok"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("fstat_ebadf"),
        },
        "mkdir" => match req.paths[0] {
            Some(path) => {
                if k.vfs.lookup(path).is_some() {
                    Sem::err(Errno::EEXIST).cost(1, 5).branch("mkdir_eexist")
                } else {
                    k.vfs.create(path, 0o755 | 0o40000);
                    k.vfs.dirty(512);
                    Sem::ok(0).cost(2, 11).branch("mkdir_ok")
                }
            }
            None => Sem::err(Errno::EFAULT).cost(1, 2).branch("mkdir_efault"),
        },
        "rmdir" | "unlink" => match req.paths[0] {
            Some(path) if k.vfs.lookup(path).is_some() => {
                k.vfs.dirty(512);
                Sem::ok(0).cost(2, 10).branch("unlink_ok")
            }
            Some(_) => Sem::err(Errno::ENOENT).cost(1, 5).branch("unlink_enoent"),
            None => Sem::err(Errno::EFAULT).cost(1, 2).branch("unlink_efault"),
        },
        "rename" => match (req.paths[0], req.paths[1]) {
            (Some(from), Some(_to)) if k.vfs.lookup(from).is_some() => {
                k.vfs.dirty(1024);
                Sem::ok(0).cost(3, 12).branch("rename_ok")
            }
            (Some(_), Some(_)) => Sem::err(Errno::ENOENT).cost(1, 5).branch("rename_enoent"),
            _ => Sem::err(Errno::EFAULT).cost(1, 2).branch("rename_efault"),
        },
        "getdents" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
            Some(FdObject::File { .. }) => Sem::ok(0).cost(2, 9).branch("getdents_ok"),
            Some(_) => Sem::err(Errno::ENOTDIR)
                .cost(1, 3)
                .branch("getdents_enotdir"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("getdents_ebadf"),
        },
        "flock" | "fcntl" => match k.fd_table(ctx.pid).get(Fd(args[0] as i32)) {
            Some(_) => Sem::ok(0).cost(1, 4).branch("fcntl_ok"),
            None => Sem::err(Errno::EBADF).cost(1, 2).branch("fcntl_ebadf"),
        },
        "memfd_create" => {
            let ino = k.vfs.create(&format!("memfd:{}", args[0]), 0o600);
            let limit = proc_nofile(k, ctx);
            match k
                .fd_table(ctx.pid)
                .alloc(FdObject::File { ino, offset: 0 }, limit)
            {
                Ok(fd) => Sem::ok(fd.0 as i64).cost(3, 10).branch("memfd_ok"),
                Err(e) => Sem::err(e).cost(1, 4).branch("memfd_emfile"),
            }
        }
        _ => return None,
    })
}

fn proc_nofile(k: &Kernel, ctx: &ExecContext) -> u32 {
    k.procs.get(ctx.pid).map_or(1024, |p| p.rlimits().nofile)
}

fn proc_fsize(k: &Kernel, ctx: &ExecContext) -> u64 {
    k.procs.get(ctx.pid).map_or(1 << 30, |p| p.rlimits().fsize)
}
