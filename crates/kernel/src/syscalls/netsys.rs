//! Network syscall semantics.
//!
//! Hosts the paper's *new* Table 4.2 finding: `socket(2)` with a valid but
//! unavailable address family execs `modprobe` through usermodehelper on
//! every request (errnos 93/94/97), escaping both the CPU and CPUSET
//! cgroups. Also models the audit netlink channel and soft-IRQ deferral of
//! packet processing.

use crate::deferral::DeferralChannel;
use crate::errno::Errno;
use crate::kernel::Kernel;
use crate::net::{AddressFamily, Socket, SocketOutcome};
use crate::process::HelperKind;
use crate::time::Usecs;
use crate::vfs::{Fd, FdObject};

use super::{ExecContext, Sem, SyscallRequest};

/// Cost of one modprobe exec: fork + exec + module path search + failure.
const MODPROBE_COST: Usecs = Usecs(700);

/// Every syscall name [`handle`] owns — the dispatch jump table routes these
/// numbers here without probing the other modules. Must stay in sync with
/// the `match` arms below (the kernel's routing tests enforce it).
pub(crate) const NAMES: &[&str] = &[
    "socket",
    "socketpair",
    "pipe",
    "pipe2",
    "eventfd2",
    "epoll_create1",
    "bind",
    "listen",
    "setsockopt",
    "getsockopt",
    "shutdown",
    "epoll_ctl",
    "connect",
    "accept",
    "accept4",
    "sendto",
    "sendmsg",
    "recvfrom",
    "recvmsg",
    "poll",
    "select",
    "epoll_wait",
];

pub(crate) fn handle(
    k: &mut Kernel,
    ctx: &ExecContext,
    name: &str,
    req: &SyscallRequest<'_>,
) -> Option<Sem> {
    let args = req.args;
    Some(match name {
        "socket" => {
            if !ctx.policy.host_deferrals {
                // Sandboxed runtimes implement their own netstack: only the
                // families the sentry supports exist, nothing reaches the
                // host module loader.
                return Some(match args[0] {
                    1 | 2 | 10 => match alloc_socket(k, ctx, args) {
                        Ok(sem) => sem,
                        Err(e) => Sem::err(e).cost(1, 5).branch("socket_sandbox_emfile"),
                    },
                    _ => Sem::err(Errno::EAFNOSUPPORT)
                        .cost(1, 6)
                        .branch("socket_sandbox_unsupported"),
                });
            }
            match k.net.create_socket(args[0], args[1], args[2]) {
                SocketOutcome::Created(sock) => {
                    let index = k.register_socket(sock);
                    let limit = nofile(k, ctx);
                    match k.fd_table(ctx.pid).alloc(FdObject::Socket { index }, limit) {
                        Ok(fd) => Sem::ok(fd.0 as i64).cost(3, 14).branch("socket_ok"),
                        Err(e) => Sem::err(e).cost(1, 5).branch("socket_emfile"),
                    }
                }
                SocketOutcome::Failed {
                    errno,
                    modprobe_execs,
                } => {
                    for _ in 0..modprobe_execs {
                        k.defer_work(
                            DeferralChannel::UserModeHelper(HelperKind::Modprobe),
                            ctx.pid,
                            ctx.cgroup,
                            &ctx.cpuset,
                            MODPROBE_COST,
                            "socket",
                        );
                    }
                    let label = match errno {
                        Errno::EAFNOSUPPORT => "socket_eafnosupport",
                        Errno::ESOCKTNOSUPPORT => "socket_esocktnosupport",
                        Errno::EPROTONOSUPPORT => "socket_eprotonosupport",
                        _ => "socket_err",
                    };
                    // request_module(9) is synchronous: the caller blocks
                    // for the whole modprobe runtime but is charged almost
                    // nothing — that is the vulnerability.
                    Sem::err(errno)
                        .cost(2, 8)
                        .block(Usecs(MODPROBE_COST.as_micros() * modprobe_execs as u64))
                        .branch(label)
                }
            }
        }
        "socketpair" => {
            if args[0] > 45 {
                Sem::err(Errno::EAFNOSUPPORT)
                    .cost(1, 4)
                    .branch("socketpair_eaf")
            } else {
                let limit = nofile(k, ctx);
                let a = k.fd_table(ctx.pid).alloc(FdObject::PipeEnd, limit);
                let b = k.fd_table(ctx.pid).alloc(FdObject::PipeEnd, limit);
                match (a, b) {
                    (Ok(fd), Ok(_)) => Sem::ok(fd.0 as i64).cost(3, 12).branch("socketpair_ok"),
                    _ => Sem::err(Errno::EMFILE)
                        .cost(1, 4)
                        .branch("socketpair_emfile"),
                }
            }
        }
        "pipe" | "pipe2" | "eventfd2" | "epoll_create1" => {
            let limit = nofile(k, ctx);
            match k.fd_table(ctx.pid).alloc(FdObject::PipeEnd, limit) {
                Ok(fd) => Sem::ok(fd.0 as i64).cost(2, 8).branch("pipe_ok"),
                Err(e) => Sem::err(e).cost(1, 3).branch("pipe_emfile"),
            }
        }
        "bind" | "listen" | "setsockopt" | "getsockopt" | "shutdown" | "epoll_ctl" => {
            match socket_of(k, ctx, args[0]) {
                SockRef::Socket => Sem::ok(0).cost(1, 6).branch("sockopt_ok"),
                SockRef::OtherFd => Sem::err(Errno::EINVAL)
                    .cost(1, 3)
                    .branch("sockopt_enotsock"),
                SockRef::Bad => Sem::err(Errno::EBADF).cost(1, 2).branch("sockopt_ebadf"),
            }
        }
        "connect" => match socket_of(k, ctx, args[0]) {
            SockRef::Socket => Sem::err(Errno::ECONNREFUSED)
                .cost(2, 9)
                .block(Usecs::from_millis(1))
                .branch("connect_refused"),
            SockRef::OtherFd => Sem::err(Errno::EINVAL)
                .cost(1, 3)
                .branch("connect_enotsock"),
            SockRef::Bad => Sem::err(Errno::EBADF).cost(1, 2).branch("connect_ebadf"),
        },
        "accept" | "accept4" => match socket_of(k, ctx, args[0]) {
            SockRef::Socket => Sem::err(Errno::EAGAIN)
                .cost(1, 5)
                .block(Usecs::from_millis(100))
                .branch("accept_block"),
            SockRef::OtherFd => Sem::err(Errno::EINVAL).cost(1, 3).branch("accept_enotsock"),
            SockRef::Bad => Sem::err(Errno::EBADF).cost(1, 2).branch("accept_ebadf"),
        },
        "sendto" | "sendmsg" => {
            let len = args[2].min(64 << 10);
            let is_audit = match fd_socket_index(k, ctx, args[0]) {
                Some(index) => k.socket(index).is_some_and(|s| s.audit),
                None => false,
            };
            match socket_of(k, ctx, args[0]) {
                SockRef::Socket => {
                    if is_audit && ctx.policy.host_deferrals {
                        // A userspace-crafted audit record: kauditd and
                        // journald do the processing in their own cgroups.
                        k.audit_event(ctx.pid, ctx.cgroup, &ctx.cpuset, "sendto");
                    } else if ctx.policy.host_deferrals {
                        // Ordinary transmit: softirq work lands on whatever
                        // core takes the completion interrupt.
                        k.defer_work(
                            DeferralChannel::SoftIrq,
                            ctx.pid,
                            ctx.cgroup,
                            &ctx.cpuset,
                            Usecs(4 + len / 8192),
                            "sendto",
                        );
                        // Past the NAPI budget, completion processing falls
                        // off the inline path into ksoftirqd and scales with
                        // the payload: rx/tx softirq amplification, charged
                        // to nobody the sender's controllers can see.
                        if k.net.transmit(len) {
                            k.defer_work(
                                DeferralChannel::NetSoftirq,
                                ctx.pid,
                                ctx.cgroup,
                                &ctx.cpuset,
                                Usecs(len / 128),
                                "sendto",
                            );
                        }
                    }
                    Sem::ok(len as i64)
                        .cost(3, 10 + len / 16384)
                        .branch(if is_audit {
                            "sendto_audit"
                        } else {
                            "sendto_ok"
                        })
                }
                SockRef::OtherFd => Sem::ok(len.min(4096) as i64)
                    .cost(2, 6)
                    .branch("sendto_pipe"),
                SockRef::Bad => Sem::err(Errno::EBADF).cost(1, 2).branch("sendto_ebadf"),
            }
        }
        "recvfrom" | "recvmsg" => match socket_of(k, ctx, args[0]) {
            SockRef::Socket => Sem::err(Errno::EAGAIN)
                .cost(1, 5)
                .block(Usecs::from_millis(100))
                .branch("recv_block"),
            SockRef::OtherFd => Sem::err(Errno::EINVAL).cost(1, 3).branch("recv_enotsock"),
            SockRef::Bad => Sem::err(Errno::EBADF).cost(1, 2).branch("recv_ebadf"),
        },
        "poll" | "select" | "epoll_wait" => {
            // Nothing ever becomes ready; timeout (ms) bounds the block.
            let timeout_ms = match name {
                "poll" => args[2],
                "select" => 200,
                _ => args[3],
            };
            let blocked = if timeout_ms == u64::MAX || timeout_ms > 1 << 20 {
                Usecs::from_secs(3600)
            } else {
                Usecs::from_millis(timeout_ms.max(1))
            };
            Sem::ok(0).cost(1, 4).block(blocked).branch("poll_timeout")
        }
        _ => return None,
    })
}

enum SockRef {
    Socket,
    OtherFd,
    Bad,
}

fn socket_of(k: &mut Kernel, ctx: &ExecContext, fd: u64) -> SockRef {
    match k.fd_table(ctx.pid).get(Fd(fd as i32)) {
        Some(FdObject::Socket { .. }) => SockRef::Socket,
        Some(_) => SockRef::OtherFd,
        None => SockRef::Bad,
    }
}

fn fd_socket_index(k: &mut Kernel, ctx: &ExecContext, fd: u64) -> Option<usize> {
    match k.fd_table(ctx.pid).get(Fd(fd as i32)) {
        Some(FdObject::Socket { index }) => Some(*index),
        _ => None,
    }
}

fn nofile(k: &Kernel, ctx: &ExecContext) -> u32 {
    k.procs.get(ctx.pid).map_or(1024, |p| p.rlimits().nofile)
}

/// Create a sandbox-internal socket (no host module loading involved).
fn alloc_socket(k: &mut Kernel, ctx: &ExecContext, args: [u64; 6]) -> Result<Sem, Errno> {
    let sock = Socket {
        family: AddressFamily::from_raw(args[0]),
        sock_type: args[1],
        protocol: args[2],
        audit: false,
    };
    let index = k.register_socket(sock);
    let limit = nofile(k, ctx);
    let fd = k
        .fd_table(ctx.pid)
        .alloc(FdObject::Socket { index }, limit)?;
    Ok(Sem::ok(fd.0 as i64).cost(3, 16).branch("socket_sandbox_ok"))
}
