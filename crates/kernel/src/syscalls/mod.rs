//! The simulated syscall interface.
//!
//! [`dispatch`] executes one syscall for a process: it runs the semantic
//! handler (grouped by subsystem in the submodules), charges the on-CPU cost
//! against the caller's core/cgroup (honouring the CPU quota), performs any
//! work deferral the call provokes, delivers fatal signals (and their
//! coredumps), and produces the coverage signal.

mod fs;
mod mm;
mod netsys;
mod procsys;

use std::sync::OnceLock;

use crate::cgroup::CgroupId;
use crate::cpu::CpuCategory;
use crate::deferral::DeferralChannel;
use crate::errno::Errno;
use crate::kernel::{CoverageMode, Kernel};
use crate::process::{HelperKind, Pid};
use crate::signal::Signal;
use crate::time::Usecs;

/// Execution policy set by the container runtime mediating the call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Whether host-level work-deferral channels are reachable. `true` under
    /// native runtimes (runC); `false` under sandboxed/virtualized runtimes,
    /// which absorb the work inside the sandbox (charged to the container).
    pub host_deferrals: bool,
    /// Multiplier on on-CPU syscall cost (gVisor's interception overhead).
    pub overhead: f64,
    /// Whether kcov coverage is available through this runtime.
    pub kcov_available: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            host_deferrals: true,
            overhead: 1.0,
            kcov_available: true,
        }
    }
}

/// Identity and placement of the calling process.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecContext {
    /// Calling process.
    pub pid: Pid,
    /// Its cgroup.
    pub cgroup: CgroupId,
    /// The core it is pinned to.
    pub core: usize,
    /// Its effective cpuset (for deferral-escape decisions).
    pub cpuset: Vec<usize>,
    /// Runtime-imposed policy.
    pub policy: ExecPolicy,
}

/// Sentinel syscall number carried by requests whose name is not in
/// [`SYSCALL_TABLE`]; such requests dispatch to the `ENOSYS` path.
pub const NR_UNKNOWN: u32 = u32::MAX;

/// A syscall request: name plus six raw arguments, as on x86-64.
///
/// Pointer arguments that reference user-memory strings (paths, xattr keys)
/// are carried out-of-band in `paths`, indexed by argument position — the
/// simulator has no user address space to dereference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRequest<'a> {
    /// Syscall name (e.g. `"open"`).
    pub name: &'a str,
    /// Kernel syscall number, resolved once at construction time
    /// ([`NR_UNKNOWN`] when the name is not modelled). [`dispatch`] routes on
    /// this instead of re-matching the name string.
    pub nr: u32,
    /// Raw register arguments.
    pub args: [u64; 6],
    /// String payloads for pointer arguments, by argument index.
    pub paths: [Option<&'a str>; 6],
}

impl<'a> SyscallRequest<'a> {
    /// A request with no string payloads. Resolves the syscall number via a
    /// hashed lookup; callers that already hold the number (e.g. from a
    /// `SyscallDesc`) should prefer [`SyscallRequest::with_nr`].
    pub fn new(name: &'a str, args: [u64; 6]) -> SyscallRequest<'a> {
        SyscallRequest {
            name,
            nr: nr_of(name).unwrap_or(NR_UNKNOWN),
            args,
            paths: [None; 6],
        }
    }

    /// A request carrying a pre-resolved syscall number — the zero-lookup
    /// fast path for executors that resolved `name` to `nr` at table-build
    /// time.
    pub fn with_nr(name: &'a str, nr: u32, args: [u64; 6]) -> SyscallRequest<'a> {
        SyscallRequest {
            name,
            nr,
            args,
            paths: [None; 6],
        }
    }

    /// Attach a string payload at argument position `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= 6`.
    #[must_use]
    pub fn with_path(mut self, idx: usize, path: &'a str) -> SyscallRequest<'a> {
        self.paths[idx] = Some(path);
        self
    }
}

/// The observable outcome of one syscall execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallOutcome {
    /// Return value (negative errno on failure, as raw Linux).
    pub retval: i64,
    /// Decoded errno on failure.
    pub errno: Option<Errno>,
    /// Fatal signal delivered to the caller as a side-effect.
    pub fatal_signal: Option<Signal>,
    /// User-mode CPU charged to the caller.
    pub user: Usecs,
    /// Kernel-mode CPU charged to the caller.
    pub system: Usecs,
    /// Off-CPU time the caller spent blocked.
    pub blocked: Usecs,
    /// Coverage signal(s) produced by this call.
    pub coverage: Vec<u64>,
    /// True when the caller's cgroup quota is exhausted: the call did not
    /// run and the executor should stop consuming this round.
    pub throttled: bool,
}

/// Semantic result built by a handler, before accounting.
#[derive(Debug, Default)]
pub(crate) struct Sem {
    retval: i64,
    errno: Option<Errno>,
    fatal: Option<Signal>,
    user: Usecs,
    system: Usecs,
    blocked: Usecs,
    /// kcov-style branch labels visited.
    trace: Vec<&'static str>,
}

impl Sem {
    pub(crate) fn ok(retval: i64) -> Sem {
        Sem {
            retval,
            ..Sem::default()
        }
    }

    pub(crate) fn err(errno: Errno) -> Sem {
        Sem {
            retval: errno.as_retval(),
            errno: Some(errno),
            ..Sem::default()
        }
    }

    pub(crate) fn cost(mut self, user: u64, system: u64) -> Sem {
        self.user = Usecs(user);
        self.system = Usecs(system);
        self
    }

    pub(crate) fn block(mut self, blocked: Usecs) -> Sem {
        self.blocked = blocked;
        self
    }

    pub(crate) fn fatal(mut self, sig: Signal) -> Sem {
        self.fatal = Some(sig);
        self
    }

    pub(crate) fn branch(mut self, label: &'static str) -> Sem {
        self.trace.push(label);
        self
    }
}

/// FNV-1a over a sequence of 64-bit words; used for coverage hashing.
pub(crate) fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The SYZKALLER fallback signal: a unique combination of syscall number and
/// error code (§3.1.2 of the paper).
pub fn fallback_signal(nr: u32, errno: Option<Errno>) -> u64 {
    let code = errno.map_or(0u64, |e| e.as_raw() as u64);
    (nr as u64) ^ (code << 20)
}

/// Execute one syscall for the process described by `ctx`.
///
/// Routes on the request's pre-resolved `nr` through a jump table; the
/// name-string cascade survives only as a fallback for unknown names.
/// Unknown syscall names fail with `ENOSYS` (and still produce a fallback
/// coverage signal, as on real SYZKALLER).
pub fn dispatch(kernel: &mut Kernel, ctx: &ExecContext, req: SyscallRequest<'_>) -> SyscallOutcome {
    dispatch_inner(kernel, ctx, req, true)
}

/// The pre-optimization dispatch path: linear name→nr scan plus the
/// module-by-module string cascade. Semantically identical to [`dispatch`];
/// retained only so the `syscall_dispatch` benchmark can measure the fast
/// path against it.
#[doc(hidden)]
pub fn dispatch_via_name_scan(
    kernel: &mut Kernel,
    ctx: &ExecContext,
    mut req: SyscallRequest<'_>,
) -> SyscallOutcome {
    req.nr = nr_of_scan(req.name).unwrap_or(NR_UNKNOWN);
    dispatch_inner(kernel, ctx, req, false)
}

fn dispatch_inner(
    kernel: &mut Kernel,
    ctx: &ExecContext,
    req: SyscallRequest<'_>,
    fast: bool,
) -> SyscallOutcome {
    let nr = req.nr;

    // CPU-quota gate (the CPU controller's limitation function, which the
    // paper notes is sound — only *tracking* has holes).
    if let Some(rem) = kernel.remaining_quota(ctx.cgroup) {
        if rem == Usecs::ZERO {
            return SyscallOutcome {
                retval: 0,
                errno: None,
                fatal_signal: None,
                user: Usecs::ZERO,
                system: Usecs::ZERO,
                blocked: Usecs::ZERO,
                coverage: Vec::new(),
                throttled: true,
            };
        }
    }

    let mut sem = if fast {
        run_handler(kernel, ctx, &req)
    } else {
        run_handler_cascade(kernel, ctx, &req)
    };

    // Apply the runtime's interception overhead, then clamp to quota.
    let mut user = sem.user.scale(ctx.policy.overhead);
    let mut system = sem.system.scale(ctx.policy.overhead);
    if let Some(rem) = kernel.remaining_quota(ctx.cgroup) {
        let want = user + system;
        if want > rem && want > Usecs::ZERO {
            let ratio = rem.as_micros() as f64 / want.as_micros() as f64;
            user = user.scale(ratio);
            system = system.scale(ratio);
        }
    }
    let user = kernel.charge(ctx.core, CpuCategory::User, user, ctx.pid, ctx.cgroup);
    let system = kernel.charge(ctx.core, CpuCategory::System, system, ctx.pid, ctx.cgroup);

    // Fatal-signal delivery: kill the process; if the signal dumps core, the
    // kernel execs the registered coredump helper through usermodehelper —
    // an out-of-band workload on a default host (§4.3.2). The dying task
    // stays in zombie state until the dump pipe closes, so the entrypoint's
    // wait() — and therefore the restart — blocks for the dump duration
    // while being charged almost nothing.
    let mut dump_wait = Usecs::ZERO;
    if let Some(sig) = sem.fatal {
        kernel.procs.exit(ctx.pid);
        if sig.dumps_core() {
            let dump_cost = Usecs(8_000);
            if ctx.policy.host_deferrals {
                kernel.defer_work(
                    DeferralChannel::UserModeHelper(HelperKind::CoreDumpHelper),
                    ctx.pid,
                    ctx.cgroup,
                    &ctx.cpuset,
                    dump_cost,
                    leak_name(req.name),
                );
                kernel.vfs.dirty(2 << 20);
                dump_wait = Usecs(12_000);
            } else {
                // Sandboxed runtimes handle the dump inside the sandbox: the
                // cost stays in the container's own cgroup.
                kernel.charge(
                    ctx.core,
                    CpuCategory::System,
                    dump_cost.scale(0.2),
                    ctx.pid,
                    ctx.cgroup,
                );
                dump_wait = Usecs(2_000);
            }
        }
    }

    // Coverage signal.
    let coverage = match kernel.config.coverage {
        CoverageMode::Kcov if ctx.policy.kcov_available => {
            let mut sigs: Vec<u64> = sem
                .trace
                .iter()
                .map(|label| {
                    fnv1a(&[
                        nr as u64,
                        fnv1a(&[
                            label.len() as u64,
                            label.as_bytes()[0] as u64,
                            *label.as_bytes().last().unwrap_or(&0) as u64,
                        ]),
                    ])
                })
                .collect();
            sigs.push(fallback_signal(nr, sem.errno));
            sigs
        }
        _ => vec![fallback_signal(nr, sem.errno)],
    };

    SyscallOutcome {
        retval: sem.retval,
        errno: sem.errno,
        fatal_signal: sem.fatal.take(),
        user,
        system,
        blocked: sem.blocked + dump_wait,
        coverage,
        throttled: false,
    }
}

/// Which handler submodule owns a syscall number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandlerModule {
    Fs,
    Mm,
    ProcSys,
    NetSys,
}

/// One past the highest modelled syscall number (`rseq` = 334).
const NR_LIMIT: usize = 335;

/// O(1) routing tables, built once from [`SYSCALL_TABLE`] and the handler
/// modules' ownership lists on first use.
/// Slot count of the open-addressed name table: a power of two at ~0.4
/// load factor for the 110-entry syscall table, so lookups are one FNV-1a
/// hash plus (almost always) a single key compare.
const NAME_SLOTS: usize = 256;

/// FNV-1a over a name. The keys are a fixed compile-time set, so the
/// DoS-resistant (and much slower on short strings) SipHash default of
/// `HashMap` buys nothing here.
#[inline]
fn fnv_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct FastTables {
    /// Open-addressed (linear probing) name → nr table with canonical
    /// `&'static str` keys; serves [`nr_of`] and `leak_name`.
    name_slots: [Option<(&'static str, u32)>; NAME_SLOTS],
    /// nr → owning handler module: the jump table [`run_handler`] routes on.
    module_by_nr: [Option<HandlerModule>; NR_LIMIT],
}

impl FastTables {
    #[inline]
    fn entry(&self, name: &str) -> Option<(&'static str, u32)> {
        let mut idx = fnv_name(name) as usize & (NAME_SLOTS - 1);
        loop {
            match self.name_slots[idx] {
                // Pointer equality first: callers overwhelmingly pass the
                // interned `&'static str` out of a syscall table, making the
                // common hit a two-word compare instead of a memcmp.
                Some((known, nr))
                    if std::ptr::eq(known.as_ptr(), name.as_ptr()) && known.len() == name.len()
                        || known == name =>
                {
                    return Some((known, nr))
                }
                Some(_) => idx = (idx + 1) & (NAME_SLOTS - 1),
                None => return None,
            }
        }
    }
}

fn fast_tables() -> &'static FastTables {
    static TABLES: OnceLock<FastTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut name_slots = [None; NAME_SLOTS];
        for (name, nr) in SYSCALL_TABLE {
            let mut idx = fnv_name(name) as usize & (NAME_SLOTS - 1);
            while name_slots[idx].is_some() {
                idx = (idx + 1) & (NAME_SLOTS - 1);
            }
            name_slots[idx] = Some((*name, *nr));
        }
        let mut tables = FastTables {
            name_slots,
            module_by_nr: [None; NR_LIMIT],
        };
        let ownership: [(&[&str], HandlerModule); 4] = [
            (fs::NAMES, HandlerModule::Fs),
            (mm::NAMES, HandlerModule::Mm),
            (procsys::NAMES, HandlerModule::ProcSys),
            (netsys::NAMES, HandlerModule::NetSys),
        ];
        for (names, module) in ownership {
            for name in names {
                let (_, nr) = tables.entry(name).expect("module NAMES ⊆ SYSCALL_TABLE");
                tables.module_by_nr[nr as usize] = Some(module);
            }
        }
        tables
    })
}

fn run_handler(kernel: &mut Kernel, ctx: &ExecContext, req: &SyscallRequest<'_>) -> Sem {
    if let Some(Some(module)) = fast_tables().module_by_nr.get(req.nr as usize) {
        let sem = match module {
            HandlerModule::Fs => fs::handle(kernel, ctx, req.name, req),
            HandlerModule::Mm => mm::handle(kernel, ctx, req.name, req),
            HandlerModule::ProcSys => procsys::handle(kernel, ctx, req.name, req),
            HandlerModule::NetSys => netsys::handle(kernel, ctx, req.name, req),
        };
        if let Some(sem) = sem {
            return sem;
        }
    }
    run_handler_cascade(kernel, ctx, req)
}

/// Slow fallback for requests whose name did not resolve to a modelled nr
/// (and the baseline the jump table is benchmarked against).
fn run_handler_cascade(kernel: &mut Kernel, ctx: &ExecContext, req: &SyscallRequest<'_>) -> Sem {
    if let Some(sem) = fs::handle(kernel, ctx, req.name, req) {
        return sem;
    }
    if let Some(sem) = mm::handle(kernel, ctx, req.name, req) {
        return sem;
    }
    if let Some(sem) = procsys::handle(kernel, ctx, req.name, req) {
        return sem;
    }
    if let Some(sem) = netsys::handle(kernel, ctx, req.name, req) {
        return sem;
    }
    Sem::err(Errno::ENOSYS).cost(1, 2).branch("enosys")
}

/// Static `"sync"`-style names for deferral events (events store a
/// `&'static str`; syscall names arrive borrowed).
fn leak_name(name: &str) -> &'static str {
    fast_tables()
        .entry(name)
        .map_or("unknown", |(known, _)| known)
}

/// The x86-64 syscall-number table for every modelled syscall.
pub const SYSCALL_TABLE: &[(&str, u32)] = &[
    ("read", 0),
    ("write", 1),
    ("open", 2),
    ("close", 3),
    ("stat", 4),
    ("fstat", 5),
    ("poll", 7),
    ("lseek", 8),
    ("mmap", 9),
    ("mprotect", 10),
    ("munmap", 11),
    ("brk", 12),
    ("rt_sigaction", 13),
    ("rt_sigprocmask", 14),
    ("rt_sigreturn", 15),
    ("ioctl", 16),
    ("pread64", 17),
    ("pwrite64", 18),
    ("access", 21),
    ("pipe", 22),
    ("select", 23),
    ("sched_yield", 24),
    ("mremap", 25),
    ("msync", 26),
    ("madvise", 28),
    ("dup", 32),
    ("dup2", 33),
    ("pause", 34),
    ("nanosleep", 35),
    ("getitimer", 36),
    ("alarm", 37),
    ("getpid", 39),
    ("socket", 41),
    ("connect", 42),
    ("accept", 43),
    ("sendto", 44),
    ("recvfrom", 45),
    ("sendmsg", 46),
    ("recvmsg", 47),
    ("shutdown", 48),
    ("bind", 49),
    ("listen", 50),
    ("socketpair", 53),
    ("setsockopt", 54),
    ("getsockopt", 55),
    ("fork", 57),
    ("exit", 60),
    ("kill", 62),
    ("uname", 63),
    ("fcntl", 72),
    ("flock", 73),
    ("fsync", 74),
    ("fdatasync", 75),
    ("truncate", 76),
    ("ftruncate", 77),
    ("getdents", 78),
    ("rename", 82),
    ("mkdir", 83),
    ("rmdir", 84),
    ("creat", 85),
    ("unlink", 87),
    ("readlink", 89),
    ("chmod", 90),
    ("fchmod", 91),
    ("gettimeofday", 96),
    ("getrlimit", 97),
    ("sysinfo", 99),
    ("times", 100),
    ("ptrace", 101),
    ("getuid", 102),
    ("setuid", 105),
    ("setgid", 106),
    ("geteuid", 107),
    ("getppid", 110),
    ("capget", 125),
    ("capset", 126),
    ("personality", 135),
    ("mlock", 149),
    ("munlock", 150),
    ("prctl", 157),
    ("setrlimit", 160),
    ("sync", 162),
    ("gettid", 186),
    ("setxattr", 188),
    ("getxattr", 191),
    ("listxattr", 194),
    ("removexattr", 197),
    ("futex", 202),
    ("epoll_wait", 232),
    ("epoll_ctl", 233),
    ("clock_gettime", 228),
    ("clock_nanosleep", 230),
    ("exit_group", 231),
    ("tgkill", 234),
    ("inotify_init", 253),
    ("inotify_add_watch", 254),
    ("openat", 257),
    ("fallocate", 285),
    ("accept4", 288),
    ("eventfd2", 290),
    ("epoll_create1", 291),
    ("dup3", 292),
    ("pipe2", 293),
    ("prlimit64", 302),
    ("syncfs", 306),
    ("getcpu", 309),
    ("kcmp", 312),
    ("getrandom", 318),
    ("memfd_create", 319),
    ("rseq", 334),
];

/// The syscall number of `name`, if modelled. O(1) hashed lookup.
#[inline]
pub fn nr_of(name: &str) -> Option<u32> {
    fast_tables().entry(name).map(|(_, nr)| nr)
}

/// The pre-optimization linear-scan lookup, retained as the baseline the
/// `syscall_dispatch` benchmark measures [`nr_of`] against.
#[doc(hidden)]
pub fn nr_of_scan(name: &str) -> Option<u32> {
    SYSCALL_TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, nr)| *nr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::{CgroupLimits, CgroupTree};
    use crate::process::ProcessKind;

    pub(crate) fn setup() -> (Kernel, ExecContext) {
        let mut k = Kernel::with_defaults();
        let cg = k
            .cgroups
            .create(
                CgroupTree::ROOT,
                "docker/fuzz-0",
                CgroupLimits {
                    cpu_quota_cores: Some(1.0),
                    cpuset: Some(vec![0]),
                    ..CgroupLimits::default()
                },
            )
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        let ctx = ExecContext {
            pid,
            cgroup: cg,
            core: 0,
            cpuset: vec![0],
            policy: ExecPolicy::default(),
        };
        (k, ctx)
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let (mut k, ctx) = setup();
        let out = dispatch(&mut k, &ctx, SyscallRequest::new("not_a_syscall", [0; 6]));
        assert_eq!(out.errno, Some(Errno::ENOSYS));
        assert_eq!(out.coverage.len(), 1);
    }

    #[test]
    fn fallback_signal_distinguishes_errno() {
        let a = fallback_signal(41, None);
        let b = fallback_signal(41, Some(Errno::EAFNOSUPPORT));
        let c = fallback_signal(41, Some(Errno::EPROTONOSUPPORT));
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn table_has_unique_names_and_numbers() {
        let mut names = std::collections::HashSet::new();
        let mut nrs = std::collections::HashSet::new();
        for (name, nr) in SYSCALL_TABLE {
            assert!(names.insert(*name), "duplicate name {name}");
            assert!(nrs.insert(*nr), "duplicate nr {nr} ({name})");
        }
        assert!(SYSCALL_TABLE.len() >= 100);
    }

    #[test]
    fn quota_throttles_when_exhausted() {
        let (mut k, ctx) = setup();
        // Exhaust the 1-core quota of the 5s window.
        k.cgroups.charge_cpu(ctx.cgroup, Usecs::from_secs(5));
        let out = dispatch(&mut k, &ctx, SyscallRequest::new("getpid", [0; 6]));
        assert!(out.throttled);
        assert_eq!(out.user + out.system, Usecs::ZERO);
    }

    #[test]
    fn overhead_scales_cost() {
        let (mut k, mut ctx) = setup();
        let base = dispatch(&mut k, &ctx, SyscallRequest::new("getpid", [0; 6]));
        ctx.policy.overhead = 3.0;
        let scaled = dispatch(&mut k, &ctx, SyscallRequest::new("getpid", [0; 6]));
        assert!(scaled.user + scaled.system > base.user + base.system);
    }

    #[test]
    fn kcov_mode_yields_richer_signal() {
        let (mut k, ctx) = setup();
        k.config.coverage = CoverageMode::Kcov;
        let out = dispatch(
            &mut k,
            &ctx,
            SyscallRequest::new("open", [0, 0, 0, 0, 0, 0]),
        );
        assert!(out.coverage.len() > 1, "kcov adds branch signals");
    }

    #[test]
    fn nr_lookup() {
        assert_eq!(nr_of("socket"), Some(41));
        assert_eq!(nr_of("rseq"), Some(334));
        assert_eq!(nr_of("bogus"), None);
    }

    #[test]
    fn hashed_lookup_matches_linear_scan() {
        for (name, nr) in SYSCALL_TABLE {
            assert_eq!(nr_of(name), Some(*nr));
            assert_eq!(nr_of(name), nr_of_scan(name));
        }
        assert_eq!(nr_of_scan("bogus"), None);
    }

    #[test]
    fn request_constructors_resolve_nr() {
        assert_eq!(SyscallRequest::new("socket", [0; 6]).nr, 41);
        assert_eq!(SyscallRequest::new("not_a_syscall", [0; 6]).nr, NR_UNKNOWN);
        assert_eq!(SyscallRequest::with_nr("socket", 41, [0; 6]).nr, 41);
    }

    #[test]
    fn jump_table_covers_every_modelled_syscall() {
        let tables = fast_tables();
        for (name, nr) in SYSCALL_TABLE {
            assert!(
                tables.module_by_nr[*nr as usize].is_some(),
                "nr {nr} ({name}) has no owning handler module"
            );
        }
    }

    #[test]
    fn jump_table_routes_like_the_cascade() {
        // The fast path and the legacy name-scan path must agree on every
        // modelled syscall (fresh kernel per dispatch so state mutations on
        // one side cannot leak into the other).
        for (name, _) in SYSCALL_TABLE {
            let (mut k, ctx) = setup();
            let fast = dispatch(&mut k, &ctx, SyscallRequest::new(name, [0; 6]));
            let (mut k, ctx) = setup();
            let slow = dispatch_via_name_scan(&mut k, &ctx, SyscallRequest::new(name, [0; 6]));
            assert_eq!(fast, slow, "routing mismatch for {name}");
        }
        // Unknown names agree too (both take the ENOSYS path).
        let (mut k, ctx) = setup();
        let fast = dispatch(&mut k, &ctx, SyscallRequest::new("bogus", [0; 6]));
        let (mut k, ctx) = setup();
        let slow = dispatch_via_name_scan(&mut k, &ctx, SyscallRequest::new("bogus", [0; 6]));
        assert_eq!(fast, slow);
    }
}
