//! `torpedo-kernel`: the simulated Linux substrate TORPEDO fuzzes.
//!
//! This crate models everything the paper's fuzzing algorithm observes or
//! exploits on a real host: a typed syscall interface with per-call CPU
//! cost, control groups with sound *limitation* but leaky *tracking*,
//! namespaces and seccomp, the work-deferral channels of Gao et al.'s
//! "Houdini's Escape" taxonomy (kworker flushes, usermodehelper coredumps
//! and modprobe storms, audit daemons, soft-IRQs), per-core `/proc/stat`
//! accounting, and a `top(1)`-style per-process sampler with the real tool's
//! blind spots.
//!
//! Determinism: all randomness flows from a seed in [`KernelConfig`], so
//! every observer round is exactly reproducible.
//!
//! # Examples
//! ```
//! use torpedo_kernel::{Kernel, Usecs};
//!
//! let mut kernel = Kernel::with_defaults();
//! kernel.begin_round(Usecs::from_secs(5));
//! let out = kernel.finish_round(&[0, 1, 2]);
//! assert_eq!(out.per_core.len(), 12);
//! ```

pub mod cgroup;
pub mod cpu;
pub mod deferral;
pub mod errno;
pub mod kernel;
pub mod leakcheck;
pub mod lsm;
pub mod namespace;
pub mod net;
pub mod process;
pub mod procfs;
pub mod seccomp;
pub mod signal;
pub mod syscalls;
pub mod time;
pub mod top;
pub mod vfs;

pub use cgroup::{Cgroup, CgroupId, CgroupLimits, CgroupTree};
pub use cpu::{CpuCategory, CpuTimes};
pub use deferral::{DeferralChannel, DeferralEvent, DeferralLedger};
pub use errno::Errno;
pub use kernel::{CoverageMode, Kernel, KernelConfig, RoundOutput};
pub use leakcheck::{
    beacon_correlation, detect_coresidence, pearson, CoresidenceVerdict, ProcView,
};
pub use lsm::{MacDecision, MacProfile, MacRule};
pub use process::{DaemonKind, HelperKind, KthreadKind, Pid, ProcessKind};
pub use signal::Signal;
pub use syscalls::{
    dispatch, fallback_signal, nr_of, ExecContext, ExecPolicy, SyscallOutcome, SyscallRequest,
    NR_UNKNOWN, SYSCALL_TABLE,
};
#[doc(hidden)]
pub use syscalls::{dispatch_via_name_scan, nr_of_scan};
pub use time::Usecs;
