//! Information-leak channels and coresidence detection (§2.4.1).
//!
//! `/proc/stat` is not namespaced on a default host: a containerized
//! process reads *host-wide* per-core counters. Gao et al.
//! ("ContainerLeaks", DSN'17) showed such pseudo-filesystem channels let
//! two cooperating containers infer coresidence on the same physical
//! machine — the prerequisite for the synergistic-power and side-channel
//! attacks the paper reviews. This module implements the classic
//! beacon/watcher protocol on top of the simulated kernel:
//!
//! * the **beacon** container alternates between bursty and idle rounds;
//! * the **watcher** samples the busy series it can observe through
//!   `/proc/stat`;
//! * a point-biserial correlation between the beacon schedule and the
//!   watcher's series reveals coresidence when the channel leaks (native
//!   runtimes) and nothing when it is virtualized away (gVisor's sentry
//!   serves a namespaced `/proc`).

use crate::cpu::CpuTimes;

/// How `/proc/stat` appears to a containerized reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcView {
    /// The raw host view — the default-runtime leak (§2.4.1).
    Host,
    /// A namespaced view restricted to the container's own cpuset, as a
    /// sandboxed runtime's virtualized procfs presents it.
    Namespaced,
}

/// The busy series a reader with `view` extracts from per-round `/proc/stat`
/// deltas. `own_cores` is the reader's cpuset (used by the namespaced view).
pub fn observed_busy_series(
    rounds: &[Vec<CpuTimes>],
    view: ProcView,
    own_cores: &[usize],
) -> Vec<f64> {
    rounds
        .iter()
        .map(|per_core| match view {
            ProcView::Host => per_core.iter().map(|c| c.busy().as_micros() as f64).sum(),
            ProcView::Namespaced => per_core
                .iter()
                .enumerate()
                .filter(|(i, _)| own_cores.contains(i))
                .map(|(_, c)| c.busy().as_micros() as f64)
                .sum(),
        })
        .collect()
}

/// Pearson correlation between two equal-length series.
///
/// Returns `0.0` for degenerate inputs (length < 2 or zero variance).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return 0.0;
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a).powi(2);
        var_b += (y - mean_b).powi(2);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Correlate a boolean beacon schedule with an observed busy series
/// (point-biserial correlation = Pearson against a 0/1 encoding).
pub fn beacon_correlation(beacon: &[bool], observed: &[f64]) -> f64 {
    let encoded: Vec<f64> = beacon.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    pearson(&encoded, observed)
}

/// Verdict of a coresidence probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoresidenceVerdict {
    /// The beacon/observation correlation.
    pub correlation: f64,
    /// Whether it exceeds the decision threshold.
    pub coresident: bool,
}

/// Decide coresidence from a beacon schedule and an observed series.
///
/// A threshold of ~0.8 gives a confident verdict over ≥8 rounds under the
/// default noise model.
pub fn detect_coresidence(beacon: &[bool], observed: &[f64], threshold: f64) -> CoresidenceVerdict {
    let correlation = beacon_correlation(beacon, observed);
    CoresidenceVerdict {
        correlation,
        coresident: correlation >= threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuCategory;
    use crate::time::Usecs;

    fn round(busy_us_per_core: &[u64]) -> Vec<CpuTimes> {
        busy_us_per_core
            .iter()
            .map(|&b| {
                let mut t = CpuTimes::default();
                t.charge(CpuCategory::System, Usecs(b));
                t.charge(CpuCategory::Idle, Usecs(1_000_000 - b));
                t
            })
            .collect()
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0, "zero variance");
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0, "length mismatch");
    }

    #[test]
    fn host_view_sees_the_beacon_namespaced_does_not() {
        // Beacon on core 2 bursts on rounds 0, 2, 4…; watcher pinned to
        // core 0 with a flat load.
        let beacon: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let rounds: Vec<Vec<CpuTimes>> = beacon
            .iter()
            .map(|&on| {
                let burst = if on { 800_000 } else { 50_000 };
                round(&[300_000, 20_000, burst, 30_000])
            })
            .collect();
        let host = observed_busy_series(&rounds, ProcView::Host, &[0]);
        let namespaced = observed_busy_series(&rounds, ProcView::Namespaced, &[0]);
        let v_host = detect_coresidence(&beacon, &host, 0.8);
        let v_ns = detect_coresidence(&beacon, &namespaced, 0.8);
        assert!(
            v_host.coresident,
            "host view leaks: {:.3}",
            v_host.correlation
        );
        assert!(
            !v_ns.coresident,
            "namespaced view must hide the beacon: {:.3}",
            v_ns.correlation
        );
    }

    #[test]
    fn uncorrelated_hosts_are_not_coresident() {
        let beacon: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        // The "other host" has its own unrelated rhythm (period 3).
        let rounds: Vec<Vec<CpuTimes>> = (0..10)
            .map(|i| {
                let load = if i % 3 == 0 { 700_000 } else { 100_000 };
                round(&[load, load / 2])
            })
            .collect();
        let series = observed_busy_series(&rounds, ProcView::Host, &[0]);
        let verdict = detect_coresidence(&beacon, &series, 0.8);
        assert!(!verdict.coresident, "got {:.3}", verdict.correlation);
    }

    #[test]
    fn beacon_correlation_is_symmetric_in_sign() {
        let beacon = [true, false, true, false];
        let inverted = [false, true, false, true];
        let series = [10.0, 1.0, 9.0, 2.0];
        assert!(beacon_correlation(&beacon, &series) > 0.9);
        assert!(beacon_correlation(&inverted, &series) < -0.9);
    }
}
