//! Virtual time for the simulated kernel.
//!
//! All simulation time is expressed in microseconds of *virtual* wall-clock
//! time. One observer round spans `T` virtual seconds; each CPU core then has
//! `T * 1_000_000` microseconds of capacity to distribute over the
//! `/proc/stat` accounting categories.

/// Microseconds of virtual time.
///
/// A plain newtype over `u64` so that durations cannot be silently confused
/// with counters or percentages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Usecs(pub u64);

impl Usecs {
    /// Zero duration.
    pub const ZERO: Usecs = Usecs(0);

    /// Construct from whole virtual seconds.
    ///
    /// # Examples
    /// ```
    /// use torpedo_kernel::time::Usecs;
    /// assert_eq!(Usecs::from_secs(5).0, 5_000_000);
    /// ```
    pub const fn from_secs(secs: u64) -> Usecs {
        Usecs(secs * 1_000_000)
    }

    /// Construct from whole virtual milliseconds.
    pub const fn from_millis(ms: u64) -> Usecs {
        Usecs(ms * 1_000)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Usecs) -> Usecs {
        Usecs(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Usecs) -> Usecs {
        Usecs(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor, saturating on overflow.
    #[must_use]
    pub fn scale(self, factor: f64) -> Usecs {
        debug_assert!(factor >= 0.0, "cannot scale a duration by {factor}");
        Usecs((self.0 as f64 * factor).round() as u64)
    }
}

impl std::ops::Add for Usecs {
    type Output = Usecs;
    fn add(self, rhs: Usecs) -> Usecs {
        Usecs(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Usecs {
    fn add_assign(&mut self, rhs: Usecs) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Usecs {
    type Output = Usecs;
    fn sub(self, rhs: Usecs) -> Usecs {
        Usecs(self.0 - rhs.0)
    }
}

impl std::fmt::Display for Usecs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Usecs::from_secs(3), Usecs(3_000_000));
        assert_eq!(Usecs::from_millis(3), Usecs(3_000));
        assert_eq!(Usecs::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = Usecs(100);
        let b = Usecs(50);
        assert_eq!(a + b, Usecs(150));
        assert_eq!(a - b, Usecs(50));
        assert_eq!(b.saturating_sub(a), Usecs::ZERO);
        assert_eq!(Usecs(u64::MAX).saturating_add(a), Usecs(u64::MAX));
    }

    #[test]
    fn scaling() {
        assert_eq!(Usecs(100).scale(2.5), Usecs(250));
        assert_eq!(Usecs(100).scale(0.0), Usecs::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Usecs(10).to_string(), "10us");
        assert_eq!(Usecs(1_500).to_string(), "1.5ms");
        assert_eq!(Usecs(2_000_000).to_string(), "2.000s");
    }

    #[test]
    fn secs_f64() {
        assert!((Usecs::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-9);
    }
}
