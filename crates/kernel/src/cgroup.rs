//! Control groups: hierarchical resource limits and — crucially for TORPEDO —
//! resource *tracking*.
//!
//! The paper's §2.2.1/§2.4.3 observation is that cgroup *limitation* logic is
//! sound while *tracking* has gaps: work deferred to kernel threads (which
//! live in the implicit root cgroup) is never charged to the originating
//! cgroup. This module reproduces that accounting model: every charge names a
//! cgroup, kernel threads are in [`CgroupTree::ROOT`], and the gap between
//! "work caused" and "work charged" is what the deferral ledger
//! ([`crate::deferral`]) records.

use std::collections::HashMap;

use crate::time::Usecs;

/// Identifier of a control group. The root cgroup is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CgroupId(pub u32);

/// Resource limits attached to a cgroup, mirroring the Docker-facing knobs of
/// Table 3.1 plus the memory/blkio controllers of Table 2.1.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CgroupLimits {
    /// `--cpus`: maximum CPU utilization, in cores (e.g. `1.5`).
    ///
    /// `None` means unconstrained.
    pub cpu_quota_cores: Option<f64>,
    /// `--cpuset-cpus`: physical cores the group may be scheduled on.
    ///
    /// `None` means all cores.
    pub cpuset: Option<Vec<usize>>,
    /// Upper limit on memory, bytes. `None` means unconstrained.
    pub memory_bytes: Option<u64>,
    /// Relative block-I/O weight (the `blkio` controller).
    pub blkio_weight: Option<u32>,
}

/// One control group node.
#[derive(Debug, Clone)]
pub struct Cgroup {
    id: CgroupId,
    parent: Option<CgroupId>,
    name: String,
    limits: CgroupLimits,
    /// CPU time charged to this cgroup in the current accounting window.
    charged_cpu: Usecs,
    /// Bytes of memory currently charged.
    charged_memory: u64,
    /// Block-I/O bytes charged in the current accounting window.
    charged_io_bytes: u64,
    /// Times the memory controller rejected a charge (OOM-kill events, the
    /// containerd metric of Table 2.2).
    oom_events: u64,
}

impl Cgroup {
    /// The group's id.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// The parent group, `None` for the root.
    pub fn parent(&self) -> Option<CgroupId> {
        self.parent
    }

    /// The group's path-style name, e.g. `"docker/fuzz-0"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The limits configured on this group.
    pub fn limits(&self) -> &CgroupLimits {
        &self.limits
    }

    /// CPU time charged to this group in the current window.
    pub fn charged_cpu(&self) -> Usecs {
        self.charged_cpu
    }

    /// Block-I/O bytes charged to this group in the current window.
    pub fn charged_io_bytes(&self) -> u64 {
        self.charged_io_bytes
    }

    /// Memory bytes currently charged to this group.
    pub fn charged_memory(&self) -> u64 {
        self.charged_memory
    }

    /// Memory-limit rejections recorded against this group (OOM events).
    pub fn oom_events(&self) -> u64 {
        self.oom_events
    }
}

/// Error raised by cgroup operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgroupError {
    /// Referenced group does not exist.
    NoSuchGroup(CgroupId),
    /// Attempted to give the root group a parent or remove it.
    RootIsImmutable,
    /// The memory controller rejected a charge (limit would be exceeded).
    MemoryLimitExceeded {
        /// Group whose limit was hit.
        group: CgroupId,
        /// Limit in bytes.
        limit: u64,
        /// Requested total in bytes.
        requested: u64,
    },
}

impl std::fmt::Display for CgroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CgroupError::NoSuchGroup(id) => write!(f, "no such cgroup: {:?}", id),
            CgroupError::RootIsImmutable => write!(f, "the root cgroup cannot be modified"),
            CgroupError::MemoryLimitExceeded {
                group,
                limit,
                requested,
            } => write!(
                f,
                "memory limit exceeded in {:?}: requested {} of {} bytes",
                group, requested, limit
            ),
        }
    }
}

impl std::error::Error for CgroupError {}

/// The cgroup hierarchy (a simplified `cgroupfs`).
#[derive(Debug, Clone)]
pub struct CgroupTree {
    groups: HashMap<CgroupId, Cgroup>,
    next_id: u32,
}

impl CgroupTree {
    /// The implicit root cgroup: no restrictions, hosts all kernel threads.
    pub const ROOT: CgroupId = CgroupId(0);

    /// Create a tree containing only the unrestricted root group.
    pub fn new() -> CgroupTree {
        let mut groups = HashMap::new();
        groups.insert(
            Self::ROOT,
            Cgroup {
                id: Self::ROOT,
                parent: None,
                name: "/".to_string(),
                limits: CgroupLimits::default(),
                charged_cpu: Usecs::ZERO,
                charged_memory: 0,
                charged_io_bytes: 0,
                oom_events: 0,
            },
        );
        CgroupTree { groups, next_id: 1 }
    }

    /// Create a child group under `parent` with the given limits.
    ///
    /// # Errors
    /// Returns [`CgroupError::NoSuchGroup`] if `parent` does not exist.
    pub fn create(
        &mut self,
        parent: CgroupId,
        name: &str,
        limits: CgroupLimits,
    ) -> Result<CgroupId, CgroupError> {
        if !self.groups.contains_key(&parent) {
            return Err(CgroupError::NoSuchGroup(parent));
        }
        let id = CgroupId(self.next_id);
        self.next_id += 1;
        self.groups.insert(
            id,
            Cgroup {
                id,
                parent: Some(parent),
                name: name.to_string(),
                limits,
                charged_cpu: Usecs::ZERO,
                charged_memory: 0,
                charged_io_bytes: 0,
                oom_events: 0,
            },
        );
        Ok(id)
    }

    /// Remove a (leaf) group. The root cannot be removed.
    ///
    /// # Errors
    /// [`CgroupError::RootIsImmutable`] for the root,
    /// [`CgroupError::NoSuchGroup`] if absent.
    pub fn remove(&mut self, id: CgroupId) -> Result<(), CgroupError> {
        if id == Self::ROOT {
            return Err(CgroupError::RootIsImmutable);
        }
        self.groups
            .remove(&id)
            .map(|_| ())
            .ok_or(CgroupError::NoSuchGroup(id))
    }

    /// Look up a group.
    pub fn get(&self, id: CgroupId) -> Option<&Cgroup> {
        self.groups.get(&id)
    }

    /// Number of groups, including the root.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.groups.len() <= 1
    }

    /// Iterate over all groups in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Cgroup> {
        self.groups.values()
    }

    /// The *effective* cpuset of a group: its own, or the nearest ancestor's.
    ///
    /// `None` means "all cores" (the root's behaviour).
    pub fn effective_cpuset(&self, id: CgroupId) -> Option<Vec<usize>> {
        let mut cur = self.groups.get(&id);
        while let Some(g) = cur {
            if let Some(set) = &g.limits.cpuset {
                return Some(set.clone());
            }
            cur = g.parent.and_then(|p| self.groups.get(&p));
        }
        None
    }

    /// The *effective* CPU quota in cores: the minimum along the ancestor
    /// chain, or `None` if unconstrained everywhere.
    pub fn effective_cpu_quota(&self, id: CgroupId) -> Option<f64> {
        let mut quota: Option<f64> = None;
        let mut cur = self.groups.get(&id);
        while let Some(g) = cur {
            if let Some(q) = g.limits.cpu_quota_cores {
                quota = Some(match quota {
                    Some(existing) => existing.min(q),
                    None => q,
                });
            }
            cur = g.parent.and_then(|p| self.groups.get(&p));
        }
        quota
    }

    /// Charge CPU time to `id` (tracking function of the CPU controller).
    ///
    /// Charging an unknown group is a no-op: this mirrors the kernel, where a
    /// task whose cgroup was removed falls back to the root — we deliberately
    /// drop the charge instead so tests can detect accounting leaks.
    pub fn charge_cpu(&mut self, id: CgroupId, amount: Usecs) {
        if let Some(g) = self.groups.get_mut(&id) {
            g.charged_cpu += amount;
        }
    }

    /// Charge block-I/O bytes to `id`.
    pub fn charge_io(&mut self, id: CgroupId, bytes: u64) {
        if let Some(g) = self.groups.get_mut(&id) {
            g.charged_io_bytes += bytes;
        }
    }

    /// Charge (or release, with `delta < 0`) memory to `id`, enforcing the
    /// effective memory limit.
    ///
    /// # Errors
    /// [`CgroupError::MemoryLimitExceeded`] when the new total would exceed
    /// the group's own limit; the charge is not applied in that case.
    pub fn charge_memory(&mut self, id: CgroupId, delta: i64) -> Result<(), CgroupError> {
        let g = self
            .groups
            .get_mut(&id)
            .ok_or(CgroupError::NoSuchGroup(id))?;
        let new = if delta >= 0 {
            g.charged_memory.saturating_add(delta as u64)
        } else {
            g.charged_memory.saturating_sub((-delta) as u64)
        };
        if let Some(limit) = g.limits.memory_bytes {
            if new > limit {
                g.oom_events += 1;
                return Err(CgroupError::MemoryLimitExceeded {
                    group: id,
                    limit,
                    requested: new,
                });
            }
        }
        g.charged_memory = new;
        Ok(())
    }

    /// Fraction of the group's own memory limit currently charged (`0.0`
    /// for an unconstrained or unknown group). Near `1.0` the kernel starts
    /// reclaiming — the trigger for the writeback deferral channel.
    pub fn memory_pressure(&self, id: CgroupId) -> f64 {
        let Some(g) = self.groups.get(&id) else {
            return 0.0;
        };
        match g.limits.memory_bytes {
            Some(limit) if limit > 0 => g.charged_memory as f64 / limit as f64,
            _ => 0.0,
        }
    }

    /// Remaining CPU budget of the group within an accounting window of
    /// `window` virtual time, given the effective quota.
    ///
    /// Returns `None` when the group is unconstrained.
    pub fn remaining_cpu_budget(&self, id: CgroupId, window: Usecs) -> Option<Usecs> {
        let quota = self.effective_cpu_quota(id)?;
        let budget = window.scale(quota);
        let used = self.groups.get(&id).map_or(Usecs::ZERO, |g| g.charged_cpu);
        Some(budget.saturating_sub(used))
    }

    /// Reset the per-window charge counters (CPU and block-I/O) on every
    /// group. Called by the scheduler at the start of each observer round.
    pub fn reset_window(&mut self) {
        for g in self.groups.values_mut() {
            g.charged_cpu = Usecs::ZERO;
            g.charged_io_bytes = 0;
        }
    }
}

impl Default for CgroupTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_child(limits: CgroupLimits) -> (CgroupTree, CgroupId) {
        let mut t = CgroupTree::new();
        let id = t.create(CgroupTree::ROOT, "docker/test", limits).unwrap();
        (t, id)
    }

    #[test]
    fn root_exists_and_is_unrestricted() {
        let t = CgroupTree::new();
        let root = t.get(CgroupTree::ROOT).unwrap();
        assert_eq!(root.limits().cpu_quota_cores, None);
        assert_eq!(t.effective_cpuset(CgroupTree::ROOT), None);
        assert!(t.is_empty());
    }

    #[test]
    fn root_cannot_be_removed() {
        let mut t = CgroupTree::new();
        assert_eq!(
            t.remove(CgroupTree::ROOT),
            Err(CgroupError::RootIsImmutable)
        );
    }

    #[test]
    fn create_under_missing_parent_fails() {
        let mut t = CgroupTree::new();
        let err = t
            .create(CgroupId(99), "x", CgroupLimits::default())
            .unwrap_err();
        assert_eq!(err, CgroupError::NoSuchGroup(CgroupId(99)));
    }

    #[test]
    fn cpuset_inherits_from_parent() {
        let mut t = CgroupTree::new();
        let parent = t
            .create(
                CgroupTree::ROOT,
                "docker",
                CgroupLimits {
                    cpuset: Some(vec![0, 1, 2]),
                    ..CgroupLimits::default()
                },
            )
            .unwrap();
        let child = t
            .create(parent, "docker/c1", CgroupLimits::default())
            .unwrap();
        assert_eq!(t.effective_cpuset(child), Some(vec![0, 1, 2]));
    }

    #[test]
    fn quota_takes_minimum_along_chain() {
        let mut t = CgroupTree::new();
        let parent = t
            .create(
                CgroupTree::ROOT,
                "docker",
                CgroupLimits {
                    cpu_quota_cores: Some(2.0),
                    ..CgroupLimits::default()
                },
            )
            .unwrap();
        let child = t
            .create(
                parent,
                "docker/c1",
                CgroupLimits {
                    cpu_quota_cores: Some(0.5),
                    ..CgroupLimits::default()
                },
            )
            .unwrap();
        assert_eq!(t.effective_cpu_quota(child), Some(0.5));
        let loose = t
            .create(parent, "docker/c2", CgroupLimits::default())
            .unwrap();
        assert_eq!(t.effective_cpu_quota(loose), Some(2.0));
    }

    #[test]
    fn cpu_budget_shrinks_with_charges() {
        let (mut t, id) = tree_with_child(CgroupLimits {
            cpu_quota_cores: Some(1.0),
            ..CgroupLimits::default()
        });
        let window = Usecs::from_secs(5);
        assert_eq!(
            t.remaining_cpu_budget(id, window),
            Some(Usecs::from_secs(5))
        );
        t.charge_cpu(id, Usecs::from_secs(2));
        assert_eq!(
            t.remaining_cpu_budget(id, window),
            Some(Usecs::from_secs(3))
        );
        t.charge_cpu(id, Usecs::from_secs(10));
        assert_eq!(t.remaining_cpu_budget(id, window), Some(Usecs::ZERO));
    }

    #[test]
    fn unconstrained_budget_is_none() {
        let (t, id) = tree_with_child(CgroupLimits::default());
        assert_eq!(t.remaining_cpu_budget(id, Usecs::from_secs(5)), None);
    }

    #[test]
    fn memory_limit_enforced() {
        let (mut t, id) = tree_with_child(CgroupLimits {
            memory_bytes: Some(1000),
            ..CgroupLimits::default()
        });
        t.charge_memory(id, 600).unwrap();
        let err = t.charge_memory(id, 600).unwrap_err();
        assert!(matches!(err, CgroupError::MemoryLimitExceeded { .. }));
        // Failed charge must not be applied.
        assert_eq!(t.get(id).unwrap().charged_memory(), 600);
        t.charge_memory(id, -200).unwrap();
        assert_eq!(t.get(id).unwrap().charged_memory(), 400);
    }

    #[test]
    fn oom_events_count_rejections() {
        let (mut t, id) = tree_with_child(CgroupLimits {
            memory_bytes: Some(100),
            ..CgroupLimits::default()
        });
        assert_eq!(t.get(id).unwrap().oom_events(), 0);
        let _ = t.charge_memory(id, 500);
        let _ = t.charge_memory(id, 500);
        assert_eq!(t.get(id).unwrap().oom_events(), 2);
        t.reset_window();
        assert_eq!(t.get(id).unwrap().oom_events(), 2, "OOM count is lifetime");
    }

    #[test]
    fn reset_window_clears_cpu_and_io_only() {
        let (mut t, id) = tree_with_child(CgroupLimits::default());
        t.charge_cpu(id, Usecs(100));
        t.charge_io(id, 4096);
        t.charge_memory(id, 123).unwrap();
        t.reset_window();
        let g = t.get(id).unwrap();
        assert_eq!(g.charged_cpu(), Usecs::ZERO);
        assert_eq!(g.charged_io_bytes(), 0);
        assert_eq!(g.charged_memory(), 123, "memory is not windowed");
    }

    #[test]
    fn charge_to_unknown_group_is_dropped() {
        let mut t = CgroupTree::new();
        t.charge_cpu(CgroupId(42), Usecs(100));
        assert_eq!(t.get(CgroupTree::ROOT).unwrap().charged_cpu(), Usecs::ZERO);
    }

    #[test]
    fn remove_leaf() {
        let (mut t, id) = tree_with_child(CgroupLimits::default());
        assert_eq!(t.len(), 2);
        t.remove(id).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(id), Err(CgroupError::NoSuchGroup(id)));
    }
}
