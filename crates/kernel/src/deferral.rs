//! Work-deferral channels and the ground-truth deferral ledger.
//!
//! §2.4.3 of the paper taxonomises cgroup escapes as *work deferral*: a
//! constrained process causes work to be executed in a different cgroup
//! (usually the root, via kernel threads or usermodehelper children) and is
//! never charged. The simulated kernel records every such event in a ledger.
//!
//! The ledger is **not** visible to the fuzzing oracles — they see only the
//! `/proc/stat` and `top` measurements, like the real TORPEDO. It is consumed
//! by the *confirmation* stage ([`torpedo-core`]'s `confirm` module), playing
//! the role of the paper's `ftrace`/`trace-cmd` function-graph analysis.

use crate::cgroup::CgroupId;
use crate::process::{HelperKind, Pid};
use crate::time::Usecs;

/// A kernel mechanism through which work escapes its originating cgroup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeferralChannel {
    /// `sync(2)`-family buffer flushes executed by kworker threads, plus the
    /// I/O-wait they inflict on unrelated processes (§4.3.1).
    IoFlush,
    /// A usermodehelper child: coredump pipe helper or `modprobe` (§4.3.2,
    /// §4.3.3).
    UserModeHelper(HelperKind),
    /// Audit events serviced by `kauditd`/`auditd`/`journald` (§2.4.3).
    Audit,
    /// Soft-IRQ processing in the context of an unlucky victim process.
    SoftIrq,
    /// TTY/LDISC flushes caused by streaming container output through the
    /// Docker CLI — the framework's own overhead, which TORPEDO minimizes but
    /// cannot eliminate (§3.3).
    TtyFlush,
    /// Dirty-page writeback plus kswapd reclaim executed by kworkers when a
    /// memory-constrained cgroup pushes against its limit: the flush and the
    /// reclaim scan both run in the root cgroup, never charged to the
    /// container that dirtied the pages.
    Writeback,
    /// rx/tx network softirq amplification: large transmits queue packet
    /// processing in `ksoftirqd`, whose CPU time lands on whatever core the
    /// softirq fires on — outside the sender's cpuset and cgroup.
    NetSoftirq,
}

impl DeferralChannel {
    /// Human-readable channel name used in confirmation reports.
    pub fn describe(self) -> &'static str {
        match self {
            DeferralChannel::IoFlush => "kworker I/O buffer flush",
            DeferralChannel::UserModeHelper(HelperKind::CoreDumpHelper) => {
                "usermodehelper coredump generation"
            }
            DeferralChannel::UserModeHelper(HelperKind::Modprobe) => {
                "usermodehelper modprobe execution"
            }
            DeferralChannel::Audit => "audit daemon event processing",
            DeferralChannel::SoftIrq => "softirq handling in victim context",
            DeferralChannel::TtyFlush => "TTY LDISC flush via work queue",
            DeferralChannel::Writeback => "kworker dirty-page writeback and kswapd reclaim",
            DeferralChannel::NetSoftirq => "net rx/tx softirq amplification",
        }
    }
}

/// One recorded escape: work of size `cost` caused by `origin_pid` (in
/// `origin_cgroup`) but charged to `charged_cgroup`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeferralEvent {
    /// Mechanism used.
    pub channel: DeferralChannel,
    /// The cgroup that *should* have been charged.
    pub origin_cgroup: CgroupId,
    /// The process that caused the work.
    pub origin_pid: Pid,
    /// The cgroup that actually absorbed the charge (root for kthreads).
    pub charged_cgroup: CgroupId,
    /// CPU cost of the escaped work.
    pub cost: Usecs,
    /// Core the escaped work ran on.
    pub core: usize,
    /// Name of the syscall that triggered the escape.
    pub syscall: &'static str,
}

/// The per-round deferral ledger.
#[derive(Debug, Clone, Default)]
pub struct DeferralLedger {
    events: Vec<DeferralEvent>,
}

impl DeferralLedger {
    /// An empty ledger.
    pub fn new() -> DeferralLedger {
        DeferralLedger { events: Vec::new() }
    }

    /// Record an event.
    pub fn record(&mut self, event: DeferralEvent) {
        self.events.push(event);
    }

    /// All events this round.
    pub fn events(&self) -> &[DeferralEvent] {
        &self.events
    }

    /// Discard all events in place, keeping the allocation — the
    /// round-reset path, which (unlike [`DeferralLedger::drain`]) lets the
    /// event vec's capacity be reused round after round.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Total escaped CPU caused by `origin` this round.
    pub fn escaped_cost(&self, origin: CgroupId) -> Usecs {
        self.events
            .iter()
            .filter(|e| e.origin_cgroup == origin)
            .fold(Usecs::ZERO, |acc, e| acc + e.cost)
    }

    /// Events caused by `origin`, grouped and summed by channel.
    pub fn by_channel(&self, origin: CgroupId) -> Vec<(DeferralChannel, Usecs, usize)> {
        let mut out: Vec<(DeferralChannel, Usecs, usize)> = Vec::new();
        for e in self.events.iter().filter(|e| e.origin_cgroup == origin) {
            if let Some(slot) = out.iter_mut().find(|(c, _, _)| *c == e.channel) {
                slot.1 += e.cost;
                slot.2 += 1;
            } else {
                out.push((e.channel, e.cost, 1));
            }
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Drain the ledger (start of a new round), returning the old events.
    pub fn drain(&mut self) -> Vec<DeferralEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no escapes were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupTree;

    fn ev(channel: DeferralChannel, origin: u32, cost: u64) -> DeferralEvent {
        DeferralEvent {
            channel,
            origin_cgroup: CgroupId(origin),
            origin_pid: Pid(1),
            charged_cgroup: CgroupTree::ROOT,
            cost: Usecs(cost),
            core: 5,
            syscall: "sync",
        }
    }

    #[test]
    fn escaped_cost_filters_by_origin() {
        let mut ledger = DeferralLedger::new();
        ledger.record(ev(DeferralChannel::IoFlush, 1, 100));
        ledger.record(ev(DeferralChannel::IoFlush, 2, 900));
        ledger.record(ev(DeferralChannel::Audit, 1, 50));
        assert_eq!(ledger.escaped_cost(CgroupId(1)), Usecs(150));
        assert_eq!(ledger.escaped_cost(CgroupId(3)), Usecs::ZERO);
    }

    #[test]
    fn by_channel_groups_and_sorts() {
        let mut ledger = DeferralLedger::new();
        ledger.record(ev(DeferralChannel::Audit, 1, 10));
        ledger.record(ev(DeferralChannel::IoFlush, 1, 100));
        ledger.record(ev(DeferralChannel::IoFlush, 1, 100));
        let grouped = ledger.by_channel(CgroupId(1));
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0], (DeferralChannel::IoFlush, Usecs(200), 2));
        assert_eq!(grouped[1], (DeferralChannel::Audit, Usecs(10), 1));
    }

    #[test]
    fn drain_empties() {
        let mut ledger = DeferralLedger::new();
        ledger.record(ev(DeferralChannel::SoftIrq, 1, 10));
        let drained = ledger.drain();
        assert_eq!(drained.len(), 1);
        assert!(ledger.is_empty());
    }

    #[test]
    fn channel_descriptions_are_distinct() {
        let channels = [
            DeferralChannel::IoFlush,
            DeferralChannel::UserModeHelper(HelperKind::CoreDumpHelper),
            DeferralChannel::UserModeHelper(HelperKind::Modprobe),
            DeferralChannel::Audit,
            DeferralChannel::SoftIrq,
            DeferralChannel::TtyFlush,
            DeferralChannel::Writeback,
            DeferralChannel::NetSoftirq,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in channels {
            assert!(seen.insert(c.describe()));
        }
    }
}
