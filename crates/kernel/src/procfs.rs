//! `/proc/stat`-style snapshots and the observer-log table renderer.
//!
//! The appendix tables of the paper (A.1–A.4) are "constructed by sampling
//! the contents of /proc/stat at two different intervals and computing the
//! difference"; this module provides exactly that workflow plus a renderer
//! producing the same columns (`CORE`, `BUSY`, `TOTAL`, `PERCENT`, then the
//! ten categories) and the aggregate `CPU` row.

use crate::cpu::{CpuCategory, CpuTimes};
use crate::kernel::Kernel;

/// A point-in-time copy of the cumulative per-core counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcStatSnapshot {
    per_core: Vec<CpuTimes>,
}

impl ProcStatSnapshot {
    /// Capture the current cumulative counters of `kernel`.
    pub fn capture(kernel: &Kernel) -> ProcStatSnapshot {
        ProcStatSnapshot {
            per_core: kernel.proc_stat().to_vec(),
        }
    }

    /// Per-core counters.
    pub fn per_core(&self) -> &[CpuTimes] {
        &self.per_core
    }

    /// The per-core difference `self - earlier` — the quantity every
    /// observer-log table in the paper reports.
    ///
    /// # Panics
    /// Panics if the snapshots have different core counts.
    pub fn since(&self, earlier: &ProcStatSnapshot) -> Vec<CpuTimes> {
        assert_eq!(
            self.per_core.len(),
            earlier.per_core.len(),
            "snapshots from different machines"
        );
        self.per_core
            .iter()
            .zip(&earlier.per_core)
            .map(|(late, early)| late.since(early))
            .collect()
    }
}

/// Sum per-core deltas into the aggregate `CPU` row.
pub fn aggregate(rows: &[CpuTimes]) -> CpuTimes {
    rows.iter()
        .fold(CpuTimes::default(), |acc, row| acc.merged(row))
}

/// Render per-core deltas in the paper's observer-log format.
///
/// Values are printed in the paper's unit: `/proc/stat` ticks (10 ms), so a
/// 5-second round shows totals near 500 per core — directly comparable to
/// Tables A.1–A.4.
pub fn render_table(rows: &[CpuTimes]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:>6} {:>6} {:>8} {:>6} {:>5} {:>7} {:>6} {:>8} {:>4} {:>8} {:>6} {:>6} {:>11}\n",
        "CORE",
        "BUSY",
        "TOTAL",
        "PERCENT",
        "USER",
        "NICE",
        "SYSTEM",
        "IDLE",
        "IO WAIT",
        "IRQ",
        "SOFTIRQ",
        "STEAL",
        "GUEST",
        "GUEST NICE"
    ));
    for (core, row) in rows.iter().enumerate() {
        out.push_str(&render_row(&format!("cpu{core}"), row));
    }
    out.push_str(&render_row("CPU", &aggregate(rows)));
    out
}

fn ticks(us: crate::time::Usecs) -> u64 {
    us.as_micros() / 10_000
}

fn render_row(label: &str, row: &CpuTimes) -> String {
    format!(
        "{:<6} {:>6} {:>6} {:>8.2} {:>6} {:>5} {:>7} {:>6} {:>8} {:>4} {:>8} {:>6} {:>6} {:>11}\n",
        label,
        ticks(row.busy()),
        ticks(row.total()),
        row.busy_percent(),
        ticks(row.get(CpuCategory::User)),
        ticks(row.get(CpuCategory::Nice)),
        ticks(row.get(CpuCategory::System)),
        ticks(row.get(CpuCategory::Idle)),
        ticks(row.get(CpuCategory::IoWait)),
        ticks(row.get(CpuCategory::Irq)),
        ticks(row.get(CpuCategory::SoftIrq)),
        ticks(row.get(CpuCategory::Steal)),
        ticks(row.get(CpuCategory::Guest)),
        ticks(row.get(CpuCategory::GuestNice)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Usecs;

    #[test]
    fn snapshot_diff_matches_round() {
        let mut k = Kernel::with_defaults();
        let before = ProcStatSnapshot::capture(&k);
        k.begin_round(Usecs::from_secs(2));
        k.finish_round(&[0]);
        let after = ProcStatSnapshot::capture(&k);
        let delta = after.since(&before);
        assert_eq!(delta.len(), 12);
        for row in &delta {
            assert_eq!(row.total(), Usecs::from_secs(2));
        }
    }

    #[test]
    fn aggregate_sums_cores() {
        let mut a = CpuTimes::default();
        a.charge(CpuCategory::User, Usecs(100));
        let mut b = CpuTimes::default();
        b.charge(CpuCategory::User, Usecs(50));
        b.charge(CpuCategory::Idle, Usecs(10));
        let agg = aggregate(&[a, b]);
        assert_eq!(agg.user, Usecs(150));
        assert_eq!(agg.idle, Usecs(10));
    }

    #[test]
    fn render_contains_all_cores_and_aggregate() {
        let rows = vec![CpuTimes::default(); 3];
        let table = render_table(&rows);
        assert!(table.contains("cpu0"));
        assert!(table.contains("cpu2"));
        assert!(table.lines().last().unwrap().starts_with("CPU"));
        assert!(table.contains("IO WAIT"));
    }

    #[test]
    fn render_uses_proc_stat_ticks() {
        let mut row = CpuTimes::default();
        row.charge(CpuCategory::User, Usecs::from_secs(1));
        let table = render_table(&[row]);
        // 1 second = 100 ticks.
        assert!(table.lines().nth(1).unwrap().contains("100"));
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn mismatched_snapshots_panic() {
        let a = ProcStatSnapshot {
            per_core: vec![CpuTimes::default(); 2],
        };
        let b = ProcStatSnapshot {
            per_core: vec![CpuTimes::default(); 3],
        };
        let _ = b.since(&a);
    }
}
