//! The simulated kernel: the substrate TORPEDO fuzzes.
//!
//! [`Kernel`] owns the cgroup tree, process table, VFS, network state and —
//! during an observer round — the per-core CPU ledger. Syscall semantics
//! live in [`crate::syscalls`]; this module provides the accounting
//! machinery those handlers charge against, including the work-deferral
//! paths that let cost escape a container's cgroup (§2.4.3 of the paper).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cgroup::{CgroupId, CgroupTree};
use crate::cpu::{CpuCategory, CpuTimes};
use crate::deferral::{DeferralChannel, DeferralEvent, DeferralLedger};
use crate::net::{NetState, Socket};
use crate::process::{DaemonKind, HelperKind, KthreadKind, Pid, ProcessKind, ProcessTable};
use crate::time::Usecs;
use crate::vfs::{FdTable, Vfs};

/// How coverage feedback is produced (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverageMode {
    /// SYZKALLER's fallback: a signal derived from the syscall number XOR'd
    /// with the error code. This is what the paper's evaluation uses on both
    /// runtimes, for parity with gVisor (which lacks kcov).
    #[default]
    Fallback,
    /// kcov-style path coverage from inside the (simulated) kernel — the
    /// §5.4 future-work configuration.
    Kcov,
}

/// Static configuration of the simulated host.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of CPU cores (the paper's testbed exposes 12).
    pub cores: usize,
    /// Seed for host background noise.
    pub noise_seed: u64,
    /// Mean fraction of each core consumed by background noise per round
    /// (cron jobs, network packets, logging — §3.4 "noise spikes").
    pub noise_fraction: f64,
    /// Coverage mode.
    pub coverage: CoverageMode,
    /// Mitigation: cache negative module-load results (§5.5 — the patched
    /// kernel). Off by default, reproducing the vulnerable mainline.
    pub modprobe_negative_cache: bool,
    /// Mitigation: charge usermodehelper children to the originating cgroup
    /// (the one-module patch the author implemented for CS5264).
    pub usermodehelper_patched: bool,
    /// Mitigation: IRON-style credit accounting (Khalid et al., NSDI'18,
    /// reviewed in §2.4.3): soft-IRQ work executed in a victim's context is
    /// attributed back to the originating cgroup, debiting its quota.
    pub iron_accounting: bool,
    /// Dirty page-cache bytes added by host activity at each round start —
    /// the data a `sync(2)` storm forces out (ensures sync has victims).
    pub host_dirty_bytes_per_round: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cores: 12,
            noise_seed: 0x7042_ED00,
            noise_fraction: 0.04,
            coverage: CoverageMode::Fallback,
            modprobe_negative_cache: false,
            usermodehelper_patched: false,
            iron_accounting: false,
            host_dirty_bytes_per_round: 8 << 20,
        }
    }
}

/// Per-round CPU ledger: one [`CpuTimes`] per core plus the round window.
#[derive(Debug, Clone)]
pub struct RoundState {
    window: Usecs,
    per_core: Vec<CpuTimes>,
}

impl RoundState {
    /// The round window length.
    pub fn window(&self) -> Usecs {
        self.window
    }

    /// Busy time charged so far on `core`.
    pub fn busy(&self, core: usize) -> Usecs {
        self.per_core[core].busy()
    }

    /// Remaining busy capacity on `core`.
    pub fn remaining(&self, core: usize) -> Usecs {
        self.window.saturating_sub(self.per_core[core].busy())
    }
}

/// Well-known daemon processes spawned at boot.
#[derive(Debug, Clone)]
pub struct BootProcs {
    /// The Docker engine daemon.
    pub dockerd: Pid,
    /// containerd.
    pub containerd: Pid,
    /// kauditd kernel thread-like audit daemon.
    pub kauditd: Pid,
    /// systemd-journald.
    pub journald: Pid,
    /// The kernel thread daemon.
    pub kthreadd: Pid,
    /// A pool of kworker threads (root cgroup).
    pub kworkers: Vec<Pid>,
    /// Per-core ksoftirqd threads.
    pub ksoftirqd: Vec<Pid>,
}

/// The simulated kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Static configuration.
    pub config: KernelConfig,
    /// The cgroup hierarchy.
    pub cgroups: CgroupTree,
    /// The process table.
    pub procs: ProcessTable,
    /// The filesystem.
    pub vfs: Vfs,
    /// Network state.
    pub net: NetState,
    /// Well-known boot-time processes.
    pub boot: BootProcs,
    sockets: Vec<Socket>,
    fd_tables: HashMap<Pid, FdTable>,
    ledger: DeferralLedger,
    round: Option<RoundState>,
    /// Recycled per-core buffer from the previous round, so
    /// [`Kernel::begin_round`] does not reallocate every round.
    round_scratch: Vec<CpuTimes>,
    cumulative: Vec<CpuTimes>,
    rng: StdRng,
    /// Pids that performed block I/O this round, with their cores: the
    /// victims a `sync(2)` makes wait.
    io_active: HashSet<(Pid, usize)>,
    rounds_completed: u64,
    /// Cores reserved for container cpusets this round: deferred work and
    /// background daemons avoid them, as the host scheduler would.
    reserved_cores: Vec<usize>,
}

impl Kernel {
    /// Boot a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Kernel {
        let mut cgroups = CgroupTree::new();
        let mut procs = ProcessTable::new();
        // A dedicated system slice for daemons, mirroring systemd layout.
        let system_slice = cgroups
            .create(CgroupTree::ROOT, "system.slice", Default::default())
            .expect("root exists");
        let dockerd = procs.spawn(
            "dockerd",
            ProcessKind::Daemon(DaemonKind::Dockerd),
            system_slice,
        );
        let containerd = procs.spawn(
            "containerd",
            ProcessKind::Daemon(DaemonKind::Containerd),
            system_slice,
        );
        let kauditd = procs.spawn(
            "kauditd",
            ProcessKind::Daemon(DaemonKind::Kauditd),
            CgroupTree::ROOT,
        );
        let journald = procs.spawn(
            "systemd-journal",
            ProcessKind::Daemon(DaemonKind::Journald),
            system_slice,
        );
        let kthreadd = procs.spawn(
            "kthreadd",
            ProcessKind::KernelThread(KthreadKind::Kthreadd),
            CgroupTree::ROOT,
        );
        let kworkers = (0..4)
            .map(|i| {
                procs.spawn(
                    &format!("kworker/u{}:{}", config.cores * 2, i),
                    ProcessKind::KernelThread(KthreadKind::Kworker),
                    CgroupTree::ROOT,
                )
            })
            .collect();
        let ksoftirqd = (0..config.cores)
            .map(|i| {
                procs.spawn(
                    &format!("ksoftirqd/{i}"),
                    ProcessKind::KernelThread(KthreadKind::Ksoftirqd),
                    CgroupTree::ROOT,
                )
            })
            .collect();
        let mut net = NetState::new();
        net.negative_cache_enabled = config.modprobe_negative_cache;
        let cores = config.cores;
        let noise_seed = config.noise_seed;
        Kernel {
            config,
            cgroups,
            procs,
            vfs: Vfs::new(),
            net,
            boot: BootProcs {
                dockerd,
                containerd,
                kauditd,
                journald,
                kthreadd,
                kworkers,
                ksoftirqd,
            },
            sockets: Vec::new(),
            fd_tables: HashMap::new(),
            ledger: DeferralLedger::new(),
            round: None,
            round_scratch: Vec::new(),
            cumulative: vec![CpuTimes::default(); cores],
            rng: StdRng::seed_from_u64(noise_seed),
            io_active: HashSet::new(),
            rounds_completed: 0,
            reserved_cores: Vec::new(),
        }
    }

    /// Boot with the default (paper-testbed-like) configuration.
    pub fn with_defaults() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    /// The active round, if any.
    pub fn round(&self) -> Option<&RoundState> {
        self.round.as_ref()
    }

    /// Rounds completed since boot.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// The per-process fd table, created on first use.
    pub fn fd_table(&mut self, pid: Pid) -> &mut FdTable {
        self.fd_tables.entry(pid).or_default()
    }

    /// Drop per-process state at process teardown.
    pub fn release_process_state(&mut self, pid: Pid) {
        self.fd_tables.remove(&pid);
    }

    /// Register a socket object, returning its table index.
    pub(crate) fn register_socket(&mut self, sock: Socket) -> usize {
        self.sockets.push(sock);
        self.sockets.len() - 1
    }

    /// Look up a socket by table index.
    pub(crate) fn socket(&self, index: usize) -> Option<&Socket> {
        self.sockets.get(index)
    }

    /// Declare the cores reserved for container cpusets: deferred work and
    /// victim selection will avoid them (the scheduler steers kworkers and
    /// helpers away from saturated, pinned cores).
    pub fn set_reserved_cores(&mut self, cores: &[usize]) {
        self.reserved_cores = cores.to_vec();
    }

    /// Record that `pid` performed block I/O on `core` this round.
    pub(crate) fn note_io_activity(&mut self, pid: Pid, core: usize) {
        self.io_active.insert((pid, core));
    }

    // ------------------------------------------------------------------
    // Round lifecycle
    // ------------------------------------------------------------------

    /// Begin an observer round of length `window`.
    ///
    /// Resets per-window cgroup charges, per-round process CPU, the deferral
    /// ledger, and deposits the host's background dirty page-cache data.
    pub fn begin_round(&mut self, window: Usecs) {
        self.cgroups.reset_window();
        self.procs.begin_round();
        self.ledger.clear();
        self.io_active.clear();
        self.net.reset_window();
        self.vfs.dirty(self.config.host_dirty_bytes_per_round);
        let state = self.fresh_round(window);
        self.round = Some(state);
    }

    /// A zeroed [`RoundState`] drawn from the recycled scratch buffer:
    /// allocation-free in steady state.
    fn fresh_round(&mut self, window: Usecs) -> RoundState {
        let mut per_core = std::mem::take(&mut self.round_scratch);
        per_core.clear();
        per_core.resize(self.config.cores, CpuTimes::default());
        RoundState { window, per_core }
    }

    /// Finish the round: add background noise, the framework's softirq
    /// side-effect, fill idle time, fold into the cumulative `/proc/stat`
    /// counters, and return the per-core deltas plus the deferral ledger.
    ///
    /// `fuzz_cores` are the cores hosting executor containers; the paper's
    /// observer logs show a persistent SOFTIRQ workload on the core
    /// immediately following the last fuzzing core (a side-effect of
    /// streaming output through Docker), which is reproduced here.
    pub fn finish_round(&mut self, fuzz_cores: &[usize]) -> RoundOutput {
        // The supervised recovery path can close a round that was never
        // opened (a worker died between rounds and the observer drains the
        // kernel before retrying); report an empty window instead of
        // panicking the recovery thread.
        let Some(mut round) = self.round.take() else {
            return RoundOutput {
                window: Usecs::ZERO,
                per_core: vec![CpuTimes::default(); self.config.cores],
                deferrals: self.ledger.drain(),
            };
        };
        let window = round.window;
        let cores = self.config.cores;

        // Background host noise on every core: a proportional floor plus
        // occasional absolute-duration spikes (cron jobs, logging bursts,
        // packet storms). Spikes do not scale with the window — their share
        // of a round shrinks as T grows, which is the §3.4 argument for
        // longer measurement intervals.
        for core in 0..cores {
            let f = self.config.noise_fraction;
            let jitter: f64 = self.rng.gen_range(0.4..1.6);
            let mut noise = window.scale(f * jitter * 0.8);
            if self.rng.gen_bool(0.08) {
                let spike_us = self.rng.gen_range(40_000.0..160_000.0) * (f / 0.04);
                noise = noise.saturating_add(Usecs(spike_us as u64));
            }
            let user = noise.scale(0.55);
            let system = noise.saturating_sub(user);
            let max = round.remaining(core);
            let user = user.min(max);
            round.per_core[core].charge(CpuCategory::User, user);
            let max = round.remaining(core);
            round.per_core[core].charge(CpuCategory::System, system.min(max));
            // Sporadic hard-IRQ slivers and stray disk waits.
            if self.rng.gen_bool(0.5) {
                let irq = window.scale(0.001).min(round.remaining(core));
                round.per_core[core].charge(CpuCategory::Irq, irq);
            }
            if self.rng.gen_bool(0.4) {
                let wait = window.scale(0.005).min(round.remaining(core));
                round.per_core[core].charge(CpuCategory::IoWait, wait);
            }
        }

        // Framework softirq side-effect on the core after the last fuzz core.
        if let Some(&max_fuzz) = fuzz_cores.iter().max() {
            let sidecar = (max_fuzz + 1) % cores;
            let amount = window
                .scale(0.035 * fuzz_cores.len() as f64)
                .min(round.remaining(sidecar));
            // Softirq time is not attributable to any process: `top` never
            // sees it (only /proc/stat does), exactly as on real hardware.
            round.per_core[sidecar].charge(CpuCategory::SoftIrq, amount);
        }

        // Idle = whatever capacity remains.
        for core in 0..cores {
            let idle = round.remaining(core);
            round.per_core[core].charge(CpuCategory::Idle, idle);
        }

        // Fold into cumulative /proc/stat counters.
        for core in 0..cores {
            self.cumulative[core] = self.cumulative[core].merged(&round.per_core[core]);
        }
        self.rounds_completed += 1;

        // Hand the caller its own copy of the per-core deltas and recycle
        // the round's buffer for the next begin_round.
        let per_core = round.per_core.clone();
        round.per_core.clear();
        self.round_scratch = round.per_core;

        RoundOutput {
            window,
            per_core,
            deferrals: self.ledger.drain(),
        }
    }

    /// Close the round on a secondary kernel partition and hand back its
    /// raw, pre-noise charge records: the per-core busy time accumulated by
    /// executors plus the drained deferral ledger, with no background noise,
    /// no idle fill, and no fold into the cumulative counters.
    ///
    /// This is one half of the partitioned-kernel merge protocol: every
    /// partition except the primary is drained with `take_round_raw` and its
    /// output replayed into the primary via [`Kernel::absorb_round_raw`]
    /// *before* the primary runs [`Kernel::finish_round`]. The noise RNG,
    /// `rounds_completed`, and the cumulative `/proc/stat` counters are
    /// untouched here, so only the primary ever consumes noise entropy and
    /// the merged output is byte-identical to a single shared kernel.
    pub fn take_round_raw(&mut self) -> RoundOutput {
        let Some(mut round) = self.round.take() else {
            return RoundOutput {
                window: Usecs::ZERO,
                per_core: vec![CpuTimes::default(); self.config.cores],
                deferrals: self.ledger.drain(),
            };
        };
        let window = round.window;
        let per_core = round.per_core.clone();
        round.per_core.clear();
        self.round_scratch = round.per_core;
        RoundOutput {
            window,
            per_core,
            deferrals: self.ledger.drain(),
        }
    }

    /// Replay another partition's raw round output (from
    /// [`Kernel::take_round_raw`]) into this kernel's open round.
    ///
    /// Per-core charges are applied category by category, clamped to this
    /// round's remaining capacity exactly like a live [`Kernel::charge`]
    /// call; `Idle` is skipped because raw rounds carry no idle fill and
    /// idle does not count against busy capacity. Deferral events are
    /// appended to the ledger in their recorded order, so merging partitions
    /// in stable shard-index order yields a canonical ledger. Process and
    /// cgroup accounting stay in the donor partition (its `top` sample and
    /// container info are read there); the RNG, `rounds_completed`, and the
    /// cumulative counters are untouched.
    pub fn absorb_round_raw(&mut self, raw: RoundOutput) {
        if self.round.is_none() {
            let state = self.fresh_round(raw.window);
            self.round = Some(state);
        }
        let Some(round) = self.round.as_mut() else {
            return;
        };
        let cores = self.config.cores.min(raw.per_core.len());
        for (core, times) in raw.per_core.iter().enumerate().take(cores) {
            for cat in CpuCategory::ALL {
                if cat == CpuCategory::Idle {
                    continue;
                }
                let amount = times.get(cat);
                if amount == Usecs::ZERO {
                    continue;
                }
                let applied = amount.min(round.remaining(core));
                round.per_core[core].charge(cat, applied);
            }
        }
        for event in raw.deferrals {
            self.ledger.record(event);
        }
    }

    /// Cumulative `/proc/stat`-style counters since boot.
    pub fn proc_stat(&self) -> &[CpuTimes] {
        &self.cumulative
    }

    // ------------------------------------------------------------------
    // Charging
    // ------------------------------------------------------------------

    /// Charge on-CPU time on `core` in `cat`, attributing it to `pid` and
    /// `cgroup`. The charge is clamped to the core's remaining capacity;
    /// the actually-applied amount is returned.
    pub fn charge(
        &mut self,
        core: usize,
        cat: CpuCategory,
        amount: Usecs,
        pid: Pid,
        cgroup: CgroupId,
    ) -> Usecs {
        if self.round.is_none() {
            let state = self.fresh_round(Usecs(u64::MAX / 4));
            self.round = Some(state);
        }
        let Some(round) = self.round.as_mut() else {
            return Usecs::ZERO;
        };
        let applied = amount.min(round.remaining(core));
        round.per_core[core].charge(cat, applied);
        self.procs.charge_cpu(pid, applied);
        self.cgroups.charge_cpu(cgroup, applied);
        applied
    }

    /// Charge I/O-wait on `core` (not attributed to any process: iowait is a
    /// core-level phenomenon). Clamped to remaining capacity.
    pub fn charge_iowait(&mut self, core: usize, amount: Usecs) -> Usecs {
        if self.round.is_none() {
            let state = self.fresh_round(Usecs(u64::MAX / 4));
            self.round = Some(state);
        }
        let Some(round) = self.round.as_mut() else {
            return Usecs::ZERO;
        };
        let applied = amount.min(round.remaining(core));
        round.per_core[core].charge(CpuCategory::IoWait, applied);
        applied
    }

    /// Remaining CPU-quota budget for `cgroup` in the current round window.
    pub fn remaining_quota(&self, cgroup: CgroupId) -> Option<Usecs> {
        let window = self
            .round
            .as_ref()
            .map_or(Usecs(u64::MAX / 4), |r| r.window);
        self.cgroups.remaining_cpu_budget(cgroup, window)
    }

    /// A deterministic per-key core outside `exclude`: where repeated
    /// usermodehelper children for one origin keep landing (key = pid), and
    /// where a flow's NAPI completions keep firing (key = cgroup — the IRQ
    /// affinity outlives any one sender process).
    pub fn stable_victim_core(&self, key: u32, exclude: &[usize]) -> usize {
        let candidates: Vec<usize> = (0..self.config.cores)
            .filter(|c| !exclude.contains(c) && !self.reserved_cores.contains(c))
            .collect();
        if candidates.is_empty() {
            return (key as usize).wrapping_mul(2654435761) % self.config.cores;
        }
        let idx = (key as usize).wrapping_mul(2654435761) % candidates.len();
        candidates[idx]
    }

    /// Pick the most-idle core **outside** `exclude` (the cpuset of the
    /// origin container): where kworkers, usermodehelper children and audit
    /// daemons land. Falls back to the globally most-idle core when the
    /// exclusion covers every core.
    pub fn pick_victim_core(&self, exclude: &[usize]) -> usize {
        let round = self.round.as_ref();
        let remaining = |core: usize| round.map_or(Usecs(u64::MAX / 4), |r| r.remaining(core));
        let candidates: Vec<usize> = (0..self.config.cores)
            .filter(|c| !exclude.contains(c) && !self.reserved_cores.contains(c))
            .collect();
        let pool: Vec<usize> = if candidates.is_empty() {
            let relaxed: Vec<usize> = (0..self.config.cores)
                .filter(|c| !exclude.contains(c))
                .collect();
            if relaxed.is_empty() {
                (0..self.config.cores).collect()
            } else {
                relaxed
            }
        } else {
            candidates
        };
        pool.into_iter()
            .max_by_key(|&c| (remaining(c), std::cmp::Reverse(c)))
            .unwrap_or(0) // a zero-core config has no victim to pick
    }

    // ------------------------------------------------------------------
    // Deferral channels
    // ------------------------------------------------------------------

    /// Execute deferred work through `channel`: charge `cost` of system time
    /// on a core outside `origin_cpuset`, attributed to `worker_pid` in the
    /// root cgroup (or, with the usermodehelper patch, back to the origin),
    /// and record the event in the ledger.
    ///
    /// Returns the core the work landed on.
    pub fn defer_work(
        &mut self,
        channel: DeferralChannel,
        origin_pid: Pid,
        origin_cgroup: CgroupId,
        origin_cpuset: &[usize],
        cost: Usecs,
        syscall: &'static str,
    ) -> usize {
        // usermodehelper children inherit the workqueue's CPU affinity and
        // keep landing on the same core for a given origin — the paper's
        // Table A.3 shows the OOB workload concentrated on one core.
        // NAPI completion processing is likewise pinned — but to the NIC
        // queue's IRQ-affinity core, which outlives any single sender
        // process, so the key is the origin container, not its pid.
        let core = match channel {
            DeferralChannel::UserModeHelper(_) => {
                self.stable_victim_core(origin_pid.0, origin_cpuset)
            }
            DeferralChannel::NetSoftirq => self.stable_victim_core(origin_cgroup.0, origin_cpuset),
            _ => self.pick_victim_core(origin_cpuset),
        };
        let patched = (self.config.usermodehelper_patched
            && matches!(channel, DeferralChannel::UserModeHelper(_)))
            || (self.config.iron_accounting
                && matches!(
                    channel,
                    DeferralChannel::SoftIrq | DeferralChannel::NetSoftirq
                ));
        let charged_cgroup = if patched {
            origin_cgroup
        } else {
            CgroupTree::ROOT
        };
        let worker_pid = match channel {
            DeferralChannel::IoFlush | DeferralChannel::TtyFlush | DeferralChannel::Writeback => {
                self.boot.kworkers[0]
            }
            DeferralChannel::Audit => self.boot.kauditd,
            DeferralChannel::SoftIrq | DeferralChannel::NetSoftirq => self.boot.ksoftirqd[core],
            DeferralChannel::UserModeHelper(kind) => {
                // usermodehelper forks a fresh short-lived child each time.
                let name = match kind {
                    HelperKind::Modprobe => "modprobe",
                    HelperKind::CoreDumpHelper => "core-dump-helper",
                };
                let pid = self
                    .procs
                    .spawn(name, ProcessKind::Helper(kind), charged_cgroup);
                self.procs.exit(pid);
                pid
            }
        };
        let cat = match channel {
            DeferralChannel::SoftIrq | DeferralChannel::NetSoftirq => CpuCategory::SoftIrq,
            _ => CpuCategory::System,
        };
        let applied = self.charge(core, cat, cost, worker_pid, charged_cgroup);
        // Work that no core could absorb within the window spills past the
        // measurement boundary; it is not part of this round's ledger.
        if applied > Usecs::ZERO {
            self.ledger.record(DeferralEvent {
                channel,
                origin_cgroup,
                origin_pid,
                charged_cgroup,
                cost: applied,
                core,
                syscall,
            });
        }
        core
    }

    /// The audit path (§2.4.3): kauditd collects the event and journald
    /// writes it out, both outside the origin cgroup.
    pub fn audit_event(
        &mut self,
        origin_pid: Pid,
        origin_cgroup: CgroupId,
        origin_cpuset: &[usize],
        syscall: &'static str,
    ) {
        let core = self.pick_victim_core(origin_cpuset);
        let kaudit_cost = Usecs(80);
        let journal_cost = Usecs(170);
        let kauditd = self.boot.kauditd;
        let journald = self.boot.journald;
        let journald_cgroup = self
            .procs
            .get(journald)
            .map_or(CgroupTree::ROOT, |p| p.cgroup());
        let a = self.charge(
            core,
            CpuCategory::System,
            kaudit_cost,
            kauditd,
            CgroupTree::ROOT,
        );
        let b = self.charge(
            core,
            CpuCategory::User,
            journal_cost,
            journald,
            journald_cgroup,
        );
        self.ledger.record(DeferralEvent {
            channel: DeferralChannel::Audit,
            origin_cgroup,
            origin_pid,
            charged_cgroup: CgroupTree::ROOT,
            cost: a + b,
            core,
            syscall,
        });
    }

    /// The `sync(2)` path: flush `fraction` of the dirty data on a kworker,
    /// inflict I/O-wait on every process that touched the disk this round
    /// and on a host "disk" core, and return how long the *caller* must
    /// block.
    ///
    /// With `host_visible = false` (sandboxed runtimes), the sentry performs
    /// the flush itself: the cost is charged **inside** the caller's cgroup
    /// and no host victim is touched — which is why none of the runC I/O
    /// findings reproduce on gVisor (§4.4.2).
    pub fn sync_flush(
        &mut self,
        origin_pid: Pid,
        origin_cgroup: CgroupId,
        origin_cpuset: &[usize],
        fraction: f64,
        host_visible: bool,
    ) -> Usecs {
        let dirty = self.vfs.dirty_bytes();
        let flushed = if fraction >= 1.0 {
            self.vfs.flush_all()
        } else {
            let part = (dirty as f64 * fraction) as u64;
            self.vfs.flush_all();
            self.vfs.dirty(dirty - part);
            part
        };
        if flushed < 4096 {
            if !host_visible {
                return Usecs(50);
            }
            // Host daemons dribble dirty data continuously: even a
            // back-to-back sync finds a residual flush, so every call keeps
            // a kworker busy and the disk queue occupied (§4.3.1).
            self.defer_work(
                DeferralChannel::IoFlush,
                origin_pid,
                origin_cgroup,
                origin_cpuset,
                Usecs(150),
                "sync",
            );
            let disk_core = self.pick_victim_core(origin_cpuset);
            self.charge_iowait(disk_core, Usecs(400));
            if let Some(&caller_core) = origin_cpuset.first() {
                self.charge_iowait(caller_core, Usecs(240));
            }
            return Usecs(800);
        }
        // ~20 ms per flushed MiB of flush CPU, capped well below a window.
        let mib = (flushed >> 20).max(1);
        let flush_cost = Usecs(mib * 20_000).min(Usecs::from_millis(1500));
        if !host_visible {
            // Sandboxed: sentry flushes within the container's own budget.
            let core = origin_cpuset.first().copied().unwrap_or(0);
            self.charge(
                core,
                CpuCategory::System,
                flush_cost.scale(0.5),
                origin_pid,
                origin_cgroup,
            );
            return flush_cost.scale(0.5);
        }
        let flush_core = self.defer_work(
            DeferralChannel::IoFlush,
            origin_pid,
            origin_cgroup,
            origin_cpuset,
            flush_cost,
            "sync",
        );
        // Everyone doing I/O waits for the disk; so does the host's own I/O.
        let wait = flush_cost.scale(6.0);
        let victims: Vec<(Pid, usize)> = self.io_active.iter().copied().collect();
        for (_pid, core) in victims {
            self.charge_iowait(core, wait.scale(0.5));
        }
        let disk_core = self.pick_victim_core(origin_cpuset);
        self.charge_iowait(disk_core, wait);
        if disk_core != flush_core {
            self.charge_iowait(flush_core, wait.scale(0.3));
        }
        // While blocked on the flush, the caller's own core sits in iowait.
        if let Some(&caller_core) = origin_cpuset.first() {
            self.charge_iowait(caller_core, wait.scale(0.3));
        }
        // The caller blocks until the flush completes (but is charged ~nothing).
        wait
    }

    /// The memory-pressure path: when a cgroup's allocation pushes against
    /// its memory limit, the kernel flushes dirty pages and runs a kswapd
    /// reclaim scan — both on kworkers in the root cgroup — while the
    /// allocating task eats direct-reclaim I/O-wait. Returns how long the
    /// *caller* must block.
    ///
    /// With `host_visible = false` (sandboxed runtimes), the sentry manages
    /// its own page cache: reclaim is charged inside the caller's cgroup and
    /// no host kworker is touched, so the channel does not exist on gVisor.
    pub fn memory_reclaim(
        &mut self,
        origin_pid: Pid,
        origin_cgroup: CgroupId,
        origin_cpuset: &[usize],
        requested_bytes: u64,
        host_visible: bool,
        syscall: &'static str,
    ) -> Usecs {
        // ~40 µs of reclaim scan per 64 KiB requested, capped well below a
        // window; the flush half also drains whatever the host has dirtied.
        let chunks = (requested_bytes >> 16).max(1);
        let reclaim_cost = Usecs(chunks * 40).min(Usecs::from_millis(800));
        if !host_visible {
            let core = origin_cpuset.first().copied().unwrap_or(0);
            let cost = reclaim_cost.scale(0.5);
            self.charge(core, CpuCategory::System, cost, origin_pid, origin_cgroup);
            return cost;
        }
        self.vfs.flush_all();
        let reclaim_core = self.defer_work(
            DeferralChannel::Writeback,
            origin_pid,
            origin_cgroup,
            origin_cpuset,
            reclaim_cost,
            syscall,
        );
        // Direct reclaim stalls the allocator and the disk while pages drain.
        let wait = reclaim_cost.scale(4.0);
        self.charge_iowait(reclaim_core, wait.scale(0.5));
        if let Some(&caller_core) = origin_cpuset.first() {
            self.charge_iowait(caller_core, wait.scale(0.4));
        }
        wait
    }
}

/// Output of one completed round.
#[derive(Debug, Clone)]
pub struct RoundOutput {
    /// Round window length.
    pub window: Usecs,
    /// Per-core category totals for this round (deltas, not cumulative).
    pub per_core: Vec<CpuTimes>,
    /// Ground-truth work-deferral events (for the confirmation stage only).
    pub deferrals: Vec<DeferralEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted() -> Kernel {
        Kernel::with_defaults()
    }

    #[test]
    fn boot_spawns_daemons_and_kthreads() {
        let k = booted();
        assert_eq!(k.cores(), 12);
        assert!(k.procs.get(k.boot.dockerd).is_some());
        assert!(k.procs.get(k.boot.kauditd).is_some());
        assert_eq!(k.boot.ksoftirqd.len(), 12);
        assert!(k.boot.kworkers.len() >= 2);
    }

    #[test]
    fn round_charges_and_idle_fill() {
        let mut k = booted();
        k.begin_round(Usecs::from_secs(1));
        let pid = k.boot.dockerd;
        let cg = k.procs.get(pid).unwrap().cgroup();
        let applied = k.charge(0, CpuCategory::User, Usecs(400_000), pid, cg);
        assert_eq!(applied, Usecs(400_000));
        let out = k.finish_round(&[0]);
        let core0 = &out.per_core[0];
        assert!(core0.user >= Usecs(400_000));
        assert_eq!(core0.total(), Usecs::from_secs(1), "idle fills to window");
    }

    #[test]
    fn charge_clamps_to_capacity() {
        let mut k = booted();
        k.begin_round(Usecs::from_millis(10));
        let pid = k.boot.dockerd;
        let cg = k.procs.get(pid).unwrap().cgroup();
        let applied = k.charge(3, CpuCategory::System, Usecs::from_secs(9), pid, cg);
        assert_eq!(applied, Usecs::from_millis(10));
        let applied2 = k.charge(3, CpuCategory::System, Usecs(1), pid, cg);
        assert_eq!(applied2, Usecs::ZERO, "core saturated");
    }

    #[test]
    fn absorbed_partition_round_matches_single_kernel() {
        let window = Usecs::from_secs(1);
        let mut single = booted();
        let mut primary = booted();
        let mut secondary = booted();
        for k in [&mut single, &mut primary, &mut secondary] {
            k.begin_round(window);
        }
        // Identically-booted kernels spawn identical daemon pids, so the
        // same (pid, cgroup) attribution works in all three.
        let pid = single.boot.dockerd;
        let cg = single.procs.get(pid).unwrap().cgroup();
        // Same charges, split across two partitions vs one shared kernel.
        single.charge(0, CpuCategory::User, Usecs(300_000), pid, cg);
        single.charge(1, CpuCategory::System, Usecs(200_000), pid, cg);
        primary.charge(0, CpuCategory::User, Usecs(300_000), pid, cg);
        secondary.charge(1, CpuCategory::System, Usecs(200_000), pid, cg);
        let raw = secondary.take_round_raw();
        assert_eq!(secondary.rounds_completed(), 0, "raw take is not a round");
        assert!(
            raw.per_core.iter().all(|c| c.idle == Usecs::ZERO),
            "raw rounds carry no idle fill"
        );
        primary.absorb_round_raw(raw);
        let merged = primary.finish_round(&[0, 1]);
        let reference = single.finish_round(&[0, 1]);
        assert_eq!(merged.per_core, reference.per_core);
        assert_eq!(merged.deferrals, reference.deferrals);
        assert_eq!(primary.proc_stat(), single.proc_stat());
        assert_eq!(secondary.proc_stat(), vec![CpuTimes::default(); 12]);
    }

    #[test]
    fn absorb_appends_deferrals_in_partition_order() {
        let window = Usecs::from_secs(5);
        let mut primary = booted();
        let mut secondary = booted();
        for (k, syscall) in [(&mut primary, "socket"), (&mut secondary, "open")] {
            let cg = k
                .cgroups
                .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
                .unwrap();
            let pid = k.procs.spawn(
                "syz-executor-0",
                ProcessKind::Executor {
                    container: "fuzz-0".into(),
                },
                cg,
            );
            k.begin_round(window);
            k.defer_work(
                DeferralChannel::UserModeHelper(HelperKind::Modprobe),
                pid,
                cg,
                &[0],
                Usecs(700),
                syscall,
            );
        }
        primary.absorb_round_raw(secondary.take_round_raw());
        let out = primary.finish_round(&[0]);
        let order: Vec<&str> = out.deferrals.iter().map(|e| e.syscall).collect();
        assert_eq!(order, ["socket", "open"], "primary first, then donors");
    }

    #[test]
    fn sidecar_softirq_lands_after_last_fuzz_core() {
        let mut k = booted();
        k.begin_round(Usecs::from_secs(5));
        let out = k.finish_round(&[0, 1, 2]);
        let sidecar = out.per_core[3].softirq;
        assert!(
            sidecar > Usecs::from_millis(200),
            "sidecar softirq {sidecar} too small"
        );
        // Other non-fuzz cores have at most noise-level softirq.
        assert!(out.per_core[5].softirq < sidecar);
    }

    #[test]
    fn defer_work_escapes_cpuset_and_cgroup() {
        let mut k = booted();
        let cg = k
            .cgroups
            .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        let core = k.defer_work(
            DeferralChannel::UserModeHelper(HelperKind::Modprobe),
            pid,
            cg,
            &[0],
            Usecs(700),
            "socket",
        );
        assert_ne!(core, 0, "work must land outside the cpuset");
        assert_eq!(
            k.cgroups.get(cg).unwrap().charged_cpu(),
            Usecs::ZERO,
            "origin cgroup is never charged"
        );
        assert_eq!(
            k.cgroups.get(CgroupTree::ROOT).unwrap().charged_cpu(),
            Usecs(700)
        );
        let out = k.finish_round(&[0]);
        assert_eq!(out.deferrals.len(), 1);
        assert_eq!(out.deferrals[0].origin_cgroup, cg);
    }

    #[test]
    fn usermodehelper_patch_charges_origin() {
        let mut k = Kernel::new(KernelConfig {
            usermodehelper_patched: true,
            ..KernelConfig::default()
        });
        let cg = k
            .cgroups
            .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        k.defer_work(
            DeferralChannel::UserModeHelper(HelperKind::CoreDumpHelper),
            pid,
            cg,
            &[0],
            Usecs(8000),
            "rt_sigreturn",
        );
        assert_eq!(k.cgroups.get(cg).unwrap().charged_cpu(), Usecs(8000));
    }

    #[test]
    fn iron_accounting_charges_softirq_to_origin() {
        let mut k = Kernel::new(KernelConfig {
            iron_accounting: true,
            ..KernelConfig::default()
        });
        let cg = k
            .cgroups
            .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        k.defer_work(
            DeferralChannel::SoftIrq,
            pid,
            cg,
            &[0],
            Usecs(500),
            "sendto",
        );
        assert_eq!(
            k.cgroups.get(cg).unwrap().charged_cpu(),
            Usecs(500),
            "IRON debits the originator"
        );
        assert_eq!(
            k.cgroups.get(CgroupTree::ROOT).unwrap().charged_cpu(),
            Usecs::ZERO
        );
        // usermodehelper channels are untouched by IRON alone.
        k.defer_work(
            DeferralChannel::UserModeHelper(HelperKind::Modprobe),
            pid,
            cg,
            &[0],
            Usecs(700),
            "socket",
        );
        assert_eq!(
            k.cgroups.get(CgroupTree::ROOT).unwrap().charged_cpu(),
            Usecs(700)
        );
    }

    #[test]
    fn audit_event_charges_daemons_not_origin() {
        let mut k = booted();
        let cg = k
            .cgroups
            .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        k.audit_event(pid, cg, &[0], "sendto");
        assert_eq!(k.cgroups.get(cg).unwrap().charged_cpu(), Usecs::ZERO);
        let kauditd = k.boot.kauditd;
        let journald = k.boot.journald;
        assert!(k.procs.get(kauditd).unwrap().round_cpu() > Usecs::ZERO);
        assert!(k.procs.get(journald).unwrap().round_cpu() > Usecs::ZERO);
    }

    #[test]
    fn sync_flush_blocks_caller_and_inflicts_iowait() {
        let mut k = booted();
        let cg = k
            .cgroups
            .create(CgroupTree::ROOT, "docker/fuzz-0", Default::default())
            .unwrap();
        let pid = k.procs.spawn(
            "syz-executor-0",
            ProcessKind::Executor {
                container: "fuzz-0".into(),
            },
            cg,
        );
        k.begin_round(Usecs::from_secs(5));
        let blocked = k.sync_flush(pid, cg, &[0], 1.0, true);
        assert!(
            blocked > Usecs::from_millis(50),
            "caller must wait: {blocked}"
        );
        let out = k.finish_round(&[0]);
        let total_iowait: u64 = out.per_core.iter().map(|c| c.iowait.as_micros()).sum();
        assert!(total_iowait > 100_000, "iowait {total_iowait} too small");
        assert!(out
            .deferrals
            .iter()
            .any(|e| e.channel == DeferralChannel::IoFlush));
        // A second sync in the same round only finds the residual dribble
        // host daemons wrote meanwhile: it still blocks, but briefly.
        k.begin_round(Usecs::from_secs(5));
        let _ = k.sync_flush(pid, cg, &[0], 1.0, true);
        let blocked2 = k.sync_flush(pid, cg, &[0], 1.0, true);
        assert!(blocked2 < blocked, "residual flush must be cheaper");
        assert!(blocked2 > Usecs::ZERO, "but the disk is never free");
    }

    #[test]
    fn proc_stat_accumulates_across_rounds() {
        let mut k = booted();
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        let snap1: Usecs = Usecs(k.proc_stat().iter().map(|c| c.total().as_micros()).sum());
        k.begin_round(Usecs::from_secs(1));
        k.finish_round(&[0]);
        let snap2: Usecs = Usecs(k.proc_stat().iter().map(|c| c.total().as_micros()).sum());
        assert_eq!(snap2.0 - snap1.0, 12 * 1_000_000);
        assert_eq!(k.rounds_completed(), 2);
    }

    #[test]
    fn pick_victim_core_prefers_idle_non_cpuset() {
        let mut k = booted();
        k.begin_round(Usecs::from_secs(1));
        let pid = k.boot.dockerd;
        let cg = k.procs.get(pid).unwrap().cgroup();
        // Load core 4 heavily.
        k.charge(4, CpuCategory::User, Usecs(900_000), pid, cg);
        let core = k.pick_victim_core(&[0, 1, 2]);
        assert!(![0, 1, 2, 4].contains(&core));
    }

    #[test]
    fn pick_victim_core_with_full_exclusion_falls_back() {
        let k = booted();
        let all: Vec<usize> = (0..12).collect();
        let core = k.pick_victim_core(&all);
        assert!(core < 12);
    }
}
