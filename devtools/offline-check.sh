#!/usr/bin/env bash
# Typecheck (and optionally test) the workspace with NO network access by
# patching the external dependencies with the API stubs under
# devtools/offline-stubs/. The committed manifests are untouched: the patch
# happens entirely through --config flags, and the stub-resolved Cargo.lock
# is kept out of the tree by removing it afterwards.
#
# Usage:
#   devtools/offline-check.sh                 # cargo check --all-targets
#   devtools/offline-check.sh test -q         # cargo test -q (stub rand!)
#   devtools/offline-check.sh clippy -- -D warnings
#
# Caveat: the rand stub draws different value streams than the real crate,
# so RNG-sensitive test outcomes can differ from a networked build.
set -euo pipefail
cd "$(dirname "$0")/.."

STUBS=devtools/offline-stubs
CONFIGS=(
  --config "patch.crates-io.rand.path=\"$STUBS/rand\""
  --config "patch.crates-io.crossbeam.path=\"$STUBS/crossbeam\""
  --config "patch.crates-io.parking_lot.path=\"$STUBS/parking_lot\""
  --config "patch.crates-io.proptest.path=\"$STUBS/proptest\""
  --config "patch.crates-io.criterion.path=\"$STUBS/criterion\""
)

CMD=${1:-check}
if [[ $# -gt 0 ]]; then shift; fi
ARGS=("$@")
if [[ "$CMD" == "check" && ${#ARGS[@]} -eq 0 ]]; then
  ARGS=(--workspace --all-targets)
fi

cleanup() { rm -f Cargo.lock; }
trap cleanup EXIT

cargo "$CMD" --offline "${CONFIGS[@]}" "${ARGS[@]}"
