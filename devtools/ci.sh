#!/usr/bin/env bash
# The tier-1 CI gate: formatting, lints (clippy -D warnings), release
# build, the full test suite, a bench smoke run, and a throughput
# regression gate against the committed BENCH_fuzz.json baseline.
#
# With network (or a warm cargo cache) this uses the real crates.io
# dependencies. Set TORPEDO_OFFLINE=1 — or let the auto-probe trip — to run
# everything through devtools/offline-check.sh's stub patches instead.
#
# Usage:
#   devtools/ci.sh
#   TORPEDO_OFFLINE=1 devtools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${TORPEDO_OFFLINE:-}" == "" ]]; then
  if ! cargo fetch >/dev/null 2>&1; then
    echo "ci: dependency fetch failed; falling back to offline stubs" >&2
    TORPEDO_OFFLINE=1
  else
    TORPEDO_OFFLINE=0
  fi
fi

run() {
  if [[ "$TORPEDO_OFFLINE" == "1" ]]; then
    devtools/offline-check.sh "$@"
  else
    cargo "$@"
  fi
}

echo "ci: cargo fmt --check"
cargo fmt --all -- --check

echo "ci: cargo clippy -D warnings"
run clippy --workspace --all-targets -- -D warnings

echo "ci: cargo build --release"
run build --release --workspace

echo "ci: cargo test"
run test -q

echo "ci: telemetry smoke (status page, /metrics, Prometheus exposition, Chrome trace)"
run build --release -p torpedo-bench --bin status_probe
./target/release/status_probe --self-test

echo "ci: forensics smoke (flight-recorder bundle round-trip + replay)"
run build --release -p torpedo-bench --bin forensics_inspect
./target/release/forensics_inspect --self-test

echo "ci: results freshness (regenerate tables, diff against committed)"
regen_dir=$(mktemp -d)
OUT_DIR="$regen_dir" TORPEDO_OFFLINE="$TORPEDO_OFFLINE" devtools/regen-results.sh
if ! diff -ru results "$regen_dir"; then
  echo "ci: results/ is stale — run devtools/regen-results.sh and commit" >&2
  exit 1
fi
rm -rf "$regen_dir"

echo "ci: bench smoke (devtools/bench.sh --quick)"
# Snapshot the committed baseline before the quick run overwrites it. The
# quick run measures the same fuzz_throughput campaign workload as the full
# run, so the two execs_per_sec figures are directly comparable.
baseline_json=""
if [[ -f BENCH_fuzz.json ]]; then
  baseline_json=$(mktemp)
  cp BENCH_fuzz.json "$baseline_json"
fi
TORPEDO_OFFLINE="$TORPEDO_OFFLINE" devtools/bench.sh --quick
for key in '"dispatch"' '"nr_of_speedup"' '"fuzz_throughput"' '"execs_per_sec"' \
           '"mutations_per_sec"' '"shard_scaling"' '"scaling_efficiency"' \
           '"contention"' '"latency"' '"round_latency_ns"' '"lock_wait_ns"'; do
  grep -q "$key" BENCH_fuzz.json \
    || { echo "ci: BENCH_fuzz.json missing $key" >&2; exit 1; }
done
grep -q '^{' BENCH_fuzz.json && grep -q '^}' BENCH_fuzz.json \
  || { echo "ci: BENCH_fuzz.json malformed" >&2; exit 1; }

echo "ci: bench regression gate (fuzz_throughput.execs_per_sec, -20% max)"
if [[ -n "$baseline_json" ]]; then
  python3 - "$baseline_json" BENCH_fuzz.json <<'PY'
import json, sys
baseline = json.load(open(sys.argv[1]))["fuzz_throughput"]["execs_per_sec"]
current = json.load(open(sys.argv[2]))["fuzz_throughput"]["execs_per_sec"]
floor = 0.8 * baseline
print(f"ci: execs_per_sec baseline {baseline:.0f}, current {current:.0f}, floor {floor:.0f}")
if current < floor:
    sys.exit(f"ci: throughput regression: {current:.0f} < {floor:.0f} (-20% of baseline)")
PY
  rm -f "$baseline_json"
else
  echo "ci: no committed BENCH_fuzz.json baseline; skipping gate" >&2
fi

echo "ci: all gates passed"
