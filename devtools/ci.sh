#!/usr/bin/env bash
# The tier-1 CI gate: formatting, lints (clippy -D warnings), release
# build, the full test suite, a bench smoke run, and a throughput
# regression gate against the committed BENCH_fuzz.json baseline.
#
# With network (or a warm cargo cache) this uses the real crates.io
# dependencies. Set TORPEDO_OFFLINE=1 — or let the auto-probe trip — to run
# everything through devtools/offline-check.sh's stub patches instead.
#
# Usage:
#   devtools/ci.sh
#   TORPEDO_OFFLINE=1 devtools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${TORPEDO_OFFLINE:-}" == "" ]]; then
  if ! cargo fetch >/dev/null 2>&1; then
    echo "ci: dependency fetch failed; falling back to offline stubs" >&2
    TORPEDO_OFFLINE=1
  else
    TORPEDO_OFFLINE=0
  fi
fi

run() {
  if [[ "$TORPEDO_OFFLINE" == "1" ]]; then
    devtools/offline-check.sh "$@"
  else
    cargo "$@"
  fi
}

echo "ci: cargo fmt --check"
cargo fmt --all -- --check

echo "ci: cargo clippy -D warnings"
run clippy --workspace --all-targets -- -D warnings

echo "ci: cargo build --release"
run build --release --workspace

echo "ci: cargo test"
run test -q

echo "ci: telemetry smoke (status page, /metrics, Prometheus exposition, Chrome trace)"
run build --release -p torpedo-bench --bin status_probe
./target/release/status_probe --self-test

echo "ci: forensics smoke (flight-recorder bundle round-trip + replay)"
run build --release -p torpedo-bench --bin forensics_inspect
./target/release/forensics_inspect --self-test

echo "ci: snapshot smoke (checkpoint -> kill -> resume, byte-identical)"
run build --release -p torpedo-bench --bin snapshot_inspect
./target/release/snapshot_inspect --self-test

echo "ci: fleet smoke (16 campaigns on 2 workers, byte-stable report)"
run build --release -p torpedo-bench --bin fleet_probe
./target/release/fleet_probe --self-test

echo "ci: directed smoke (distance steering <= undirected per family, deterministic)"
run build --release -p torpedo-bench --bin directed_probe
./target/release/directed_probe --self-test

echo "ci: observatory smoke (journal byte-identical at 1/2/4 workers, live tail, /health)"
run build --release -p torpedo-bench --bin events_probe
./target/release/events_probe --self-test

echo "ci: observatory inspector smoke (journal round-trip, tamper rejection, series)"
run build --release -p torpedo-bench --bin events_inspect
./target/release/events_inspect --self-test

echo "ci: parser fuzz smoke (in-tree fallback fuzzer, ~30s time-box)"
run build --release -p torpedo-bench --bin parser_fuzz
./target/release/parser_fuzz --secs 30
# Coverage-guided pass when cargo-fuzz + nightly are available (they are
# not in the offline container; the fallback above always runs).
if command -v cargo-fuzz >/dev/null 2>&1 && cargo +nightly --version >/dev/null 2>&1; then
  echo "ci: cargo-fuzz pass (30s per target)"
  for target in logfmt_json forensics_bundle seed_file snapshot_bundle; do
    (cd fuzz && cargo +nightly fuzz run "$target" "corpora/$target" -- -max_total_time=30)
  done
else
  echo "ci: cargo-fuzz or nightly unavailable; skipped coverage-guided pass" >&2
fi

echo "ci: results freshness (regenerate tables, diff against committed)"
regen_dir=$(mktemp -d)
OUT_DIR="$regen_dir" TORPEDO_OFFLINE="$TORPEDO_OFFLINE" devtools/regen-results.sh
if ! diff -ru results "$regen_dir"; then
  echo "ci: results/ is stale — run devtools/regen-results.sh and commit" >&2
  exit 1
fi
rm -rf "$regen_dir"

echo "ci: bench smoke (devtools/bench.sh --quick)"
# Snapshot the committed baseline before the quick run overwrites it. The
# quick run measures the same fuzz_throughput campaign workload as the full
# run, so the two execs_per_sec figures are directly comparable.
baseline_json=""
if [[ -f BENCH_fuzz.json ]]; then
  baseline_json=$(mktemp)
  cp BENCH_fuzz.json "$baseline_json"
fi
TORPEDO_OFFLINE="$TORPEDO_OFFLINE" devtools/bench.sh --quick
for key in '"dispatch"' '"nr_of_speedup"' '"fuzz_throughput"' '"execs_per_sec"' \
           '"mutations_per_sec"' '"shard_scaling"' '"scaling_efficiency"' \
           '"scaling_gate"' '"contention"' '"latency"' '"round_latency_ns"' \
           '"lock_wait_ns"' '"kernel_wait_ns"' '"durability"' \
           '"overhead_off_pct"' '"resume_byte_identical"' '"fleet"' \
           '"scheduler_overhead_pct"' '"bandit_executions"' '"directed"' \
           '"directed_execs_to_first_flag"' '"overhead_no_target_pct"' \
           '"events"' '"overhead_on_pct"' '"events_emitted"' \
           '"report_identical"'; do
  grep -q "$key" BENCH_fuzz.json \
    || { echo "ci: BENCH_fuzz.json missing $key" >&2; exit 1; }
done
grep -q '^{' BENCH_fuzz.json && grep -q '^}' BENCH_fuzz.json \
  || { echo "ci: BENCH_fuzz.json malformed" >&2; exit 1; }

echo "ci: bench regression gate (fuzz_throughput.execs_per_sec, -20% max)"
if [[ -n "$baseline_json" ]]; then
  python3 - "$baseline_json" BENCH_fuzz.json <<'PY'
import json, sys
# Normalize execs/s by the dispatch microbench from the same run: the
# shared bench host drifts +/-30% on a minutes scale, which swamps an
# absolute comparison. execs_per_sec scales with host speed and
# ns_per_op scales inversely, so their product is host-speed-invariant
# and only moves when the campaign itself got slower relative to the
# machine.
def normalized(path):
    d = json.load(open(path))
    eps = d["fuzz_throughput"]["execs_per_sec"]
    ns = d["dispatch"]["dispatch_nr_fast_path_ns_per_op"]
    return eps, eps * ns
baseline_eps, baseline = normalized(sys.argv[1])
current_eps, current = normalized(sys.argv[2])
# Pass on either criterion: a genuine campaign regression drags down both
# the absolute figure and the normalized one, while host drift moves only
# one of them.
ok_abs = current_eps >= 0.8 * baseline_eps
ok_norm = current >= 0.8 * baseline
print(f"ci: execs_per_sec baseline {baseline_eps:.0f}, current {current_eps:.0f} "
      f"({'ok' if ok_abs else 'low'}); normalized baseline {baseline:.0f}, "
      f"current {current:.0f} ({'ok' if ok_norm else 'low'})")
if not (ok_abs or ok_norm):
    sys.exit("ci: throughput regression: both absolute and "
             "dispatch-normalized execs_per_sec fell >20% below baseline")
PY
  rm -f "$baseline_json"
else
  echo "ci: no committed BENCH_fuzz.json baseline; skipping gate" >&2
fi

echo "ci: durability gate (checkpoint-off overhead < 2%, resume byte-identical)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["durability"]
off = d["overhead_off_pct"]
print(f"ci: checkpoint-off overhead {off:.2f}% (limit 2.00%), "
      f"resume replayed {d['resume_rounds_replayed']} round(s)")
if off >= 2.0:
    sys.exit(f"ci: checkpointing-off overhead {off:.2f}% >= 2% budget")
if not d["resume_byte_identical"]:
    sys.exit("ci: resumed campaign report diverged from the uninterrupted run")
PY

echo "ci: shard scaling gate (4-shard efficiency >= 0.5 when host_parallelism >= 4)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["shard_scaling"]
hp = d["host_parallelism"]
point = next(p for p in d["points"] if p["shards"] == 4)
eff = point["scaling_efficiency"]
if hp < 4:
    # The harness annotates the skip in the JSON (`scaling_gate`); a
    # serialized-core host says nothing about lock contention.
    print(f"ci: scaling gate skipped: host_parallelism {hp} < 4 shards "
          f"(4-shard efficiency measured {eff:.3f})")
    sys.exit(0)
print(f"ci: 4-shard scaling_efficiency {eff:.3f} (floor 0.500, "
      f"host_parallelism {hp})")
if eff < 0.5:
    sys.exit(f"ci: 4-shard scaling efficiency {eff:.3f} < 0.5 floor")
PY

echo "ci: contention gate (exec_kernel_wait_ns must not grow superlinearly)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
points = {p["workers"]: p for p in json.load(open(sys.argv[1]))["contention"]}
w1 = points[1]["exec_kernel_wait_ns"]
w8 = points[8]["exec_kernel_wait_ns"]
# With partitioned kernels both figures are near zero (each worker locks
# only its own uncontended partition once per window), so the 10x ratio
# alone would gate on timer noise; a 50 microsecond absolute floor keeps
# the gate meaningful while still catching a reintroduced global lock,
# which costs milliseconds at 8 workers.
limit = max(10 * w1, 50_000)
print(f"ci: exec_kernel_wait_ns 1 worker {w1}, 8 workers {w8} (limit {limit})")
if w8 >= limit:
    sys.exit(f"ci: kernel wait at 8 workers ({w8} ns) >= limit ({limit} ns): "
             "global contention is back")
PY

echo "ci: fleet gates (scheduler overhead < 5%, bandit <= round-robin to flag target)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["fleet"]
o = d["overhead"]
pct = o["scheduler_overhead_pct"]
print(f"ci: fleet scheduler overhead {pct:.2f}% at {o['campaigns']} campaigns "
      f"(limit 5.00%)")
if pct >= 5.0:
    sys.exit(f"ci: fleet scheduler overhead {pct:.2f}% >= 5% budget")
t = d["time_to_flags"]
bandit, rr = t["bandit_executions"], t["round_robin_executions"]
print(f"ci: executions to {t['flag_target']} flags: bandit {bandit}, "
      f"round-robin {rr}")
# The schedule is deterministic — a pure function of (fleet seed, campaign
# set) — so this comparison is exact, not a noisy wall-clock race.
if bandit > rr:
    sys.exit(f"ci: bandit needed more executions ({bandit}) than "
             f"round-robin ({rr}) to reach the flag target")
PY

echo "ci: directed gates (per-family directed <= undirected, no-target overhead < 2%)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["directed"]
# Both arms of each family share seeds and RNG seed and campaigns are
# deterministic, so the per-family comparison is exact, not a wall-clock
# race.
for fam in d["families"]:
    dx, ux = fam["directed_execs_to_first_flag"], fam["undirected_execs_to_first_flag"]
    print(f"ci: directed {fam['family']}: {dx} vs {ux} executions to first flag "
          f"(directed flagged {fam['directed_flagged']})")
    if dx > ux:
        sys.exit(f"ci: directed {fam['family']} needed more executions ({dx}) "
                 f"than undirected ({ux})")
if not any(fam["directed_flagged"] for fam in d["families"]):
    sys.exit("ci: no directed family flagged")
pct = d["overhead_no_target_pct"]
print(f"ci: directed no-target overhead {pct:.2f}% (limit 2.00%)")
if pct >= 2.0:
    sys.exit(f"ci: directed no-target overhead {pct:.2f}% >= 2% budget")
if not d["no_target_report_identical"]:
    sys.exit("ci: unreachable-target campaign diverged from the undirected run")
PY

echo "ci: events gate (events-on overhead < 2%, report byte-identical)"
python3 - BENCH_fuzz.json <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["events"]
pct = d["overhead_on_pct"]
print(f"ci: events-on overhead {pct:.2f}% (limit 2.00%), "
      f"{d['events_emitted']} events emitted, journaled overhead "
      f"{d['overhead_journaled_pct']:.2f}% (ungated)")
if pct >= 2.0:
    sys.exit(f"ci: events-on overhead {pct:.2f}% >= 2% budget")
if not d["report_identical"]:
    sys.exit("ci: events-on campaign report diverged from the events-off run")
PY

echo "ci: all gates passed"
