#!/usr/bin/env bash
# The tier-1 CI gate: formatting, lints (clippy -D warnings), release
# build, and the full test suite.
#
# With network (or a warm cargo cache) this uses the real crates.io
# dependencies. Set TORPEDO_OFFLINE=1 — or let the auto-probe trip — to run
# everything through devtools/offline-check.sh's stub patches instead.
#
# Usage:
#   devtools/ci.sh
#   TORPEDO_OFFLINE=1 devtools/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${TORPEDO_OFFLINE:-}" == "" ]]; then
  if ! cargo fetch >/dev/null 2>&1; then
    echo "ci: dependency fetch failed; falling back to offline stubs" >&2
    TORPEDO_OFFLINE=1
  else
    TORPEDO_OFFLINE=0
  fi
fi

run() {
  if [[ "$TORPEDO_OFFLINE" == "1" ]]; then
    devtools/offline-check.sh "$@"
  else
    cargo "$@"
  fi
}

echo "ci: cargo fmt --check"
cargo fmt --all -- --check

echo "ci: cargo clippy -D warnings"
run clippy --workspace --all-targets -- -D warnings

echo "ci: cargo build --release"
run build --release --workspace

echo "ci: cargo test"
run test -q

echo "ci: bench smoke (devtools/bench.sh --quick)"
TORPEDO_OFFLINE="$TORPEDO_OFFLINE" devtools/bench.sh --quick
for key in '"dispatch"' '"nr_of_speedup"' '"fuzz_throughput"' '"execs_per_sec"' \
           '"mutations_per_sec"' '"shard_scaling"'; do
  grep -q "$key" BENCH_fuzz.json \
    || { echo "ci: BENCH_fuzz.json missing $key" >&2; exit 1; }
done
grep -q '^{' BENCH_fuzz.json && grep -q '^}' BENCH_fuzz.json \
  || { echo "ci: BENCH_fuzz.json malformed" >&2; exit 1; }

echo "ci: all gates passed"
