#!/usr/bin/env bash
# The throughput cap: builds the torpedo_bench harness in release mode and
# writes BENCH_fuzz.json at the repo root — dispatch microbench (nr fast
# path vs name-string path), whole-campaign throughput (execs/s, rounds/s,
# mutations/s) and the shard scaling curve.
#
# Works offline: falls back to devtools/offline-check.sh's stub patches
# when dependency fetch fails (or when TORPEDO_OFFLINE=1 is set).
#
# Usage:
#   devtools/bench.sh            # full measurement
#   devtools/bench.sh --quick    # seconds-scale smoke (CI)
#
# TORPEDO_BENCH_THREADS=N overrides the harness's available_parallelism
# probe (the `host_parallelism` figure in BENCH_fuzz.json) for runners
# whose cgroup CPU quota makes the probe misleading; the shard-scaling CI
# gate is skipped-and-annotated when the figure is below 4.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${TORPEDO_OFFLINE:-}" == "" ]]; then
  if ! cargo fetch >/dev/null 2>&1; then
    echo "bench: dependency fetch failed; falling back to offline stubs" >&2
    TORPEDO_OFFLINE=1
  else
    TORPEDO_OFFLINE=0
  fi
fi

run() {
  if [[ "$TORPEDO_OFFLINE" == "1" ]]; then
    devtools/offline-check.sh "$@"
  else
    cargo "$@"
  fi
}

echo "bench: building torpedo_bench (release)"
run build --release -p torpedo-bench --bin torpedo_bench

echo "bench: running harness $*"
./target/release/torpedo_bench "$@" --out BENCH_fuzz.json >/dev/null

echo "bench: wrote BENCH_fuzz.json"
