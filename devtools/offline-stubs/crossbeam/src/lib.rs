//! Offline API stub for `crossbeam` 0.8 — see ../../README.md.
//!
//! Backs `crossbeam::channel` bounded channels with `std::sync::mpsc` and
//! `crossbeam::deque` work-stealing deques with mutexed `VecDeque`s. The
//! deque stub is functionally honest (stealing really moves tasks between
//! queues) so the work-stealing shard scheduler exercises the same control
//! flow offline, just without the lock-free fast path.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// Stand-in for `crossbeam_deque::Worker` (FIFO flavor).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Stand-in for `crossbeam_deque::Stealer`.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// Stand-in for `crossbeam_deque::Injector`, the shared FIFO pool.
    #[derive(Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Bounded multi-producer sender.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Single-consumer receiver.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}
