//! Offline API stub for `crossbeam` 0.8 — see ../../README.md.
//!
//! Backs `crossbeam::channel` bounded channels with `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Bounded multi-producer sender.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Single-consumer receiver.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is disconnected"),
            }
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    /// A bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}
