//! Offline API stub for `criterion` 0.5 — see ../../README.md.
//!
//! Benchmarks compiled against this stub run each closure a handful of
//! times with no measurement; it exists so `--all-targets` typechecks.

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

/// Stand-in for `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// Stand-in for `criterion::BatchSize`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Stand-in for `criterion::Bencher`.
pub struct Bencher;

const STUB_ITERS: u64 = 3;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..STUB_ITERS {
            let _ = routine();
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..STUB_ITERS {
            let input = setup();
            let _ = routine(input);
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        _name: &str,
        mut f: F,
    ) -> &mut Criterion {
        f(&mut Bencher);
        self
    }
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, _id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (no-op here).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
