//! Offline API stub for `parking_lot` 0.12 — see ../../README.md.
//!
//! Wraps `std::sync::Mutex`/`std::sync::RwLock` with parking_lot's
//! non-poisoning `lock()`/`read()`/`write()` signatures.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// Stand-in for `parking_lot::MutexGuard`.
pub struct MutexGuard<'a, T>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|poison| poison.into_inner()))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Stand-in for `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

/// Stand-in for `parking_lot::RwLockReadGuard`.
pub struct RwLockReadGuard<'a, T>(StdRwLockReadGuard<'a, T>);

/// Stand-in for `parking_lot::RwLockWriteGuard`.
pub struct RwLockWriteGuard<'a, T>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|poison| poison.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|poison| poison.into_inner()))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poison| poison.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
