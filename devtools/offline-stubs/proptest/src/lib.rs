//! Offline API stub for `proptest` 1.x — see ../../README.md.
//!
//! The `proptest!` macro here expands to a plain loop over sampled inputs:
//! no shrinking, no regression persistence, fixed case count. Only the
//! strategy combinators this workspace uses are provided.

/// Internal splitmix64 RNG driving the samplers.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: seed ^ 0xA076_1D64_78BD_642F,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod test_runner {
    /// Stand-in for `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::Rng64;

    /// Stand-in for `proptest::strategy::Strategy`: draw one value.
    pub trait Strategy {
        type Value;

        fn sample_one(&self, rng: &mut Rng64) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_one(&self, rng: &mut Rng64) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty strategy range");
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_one(&self, rng: &mut Rng64) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample_one(&self, rng: &mut Rng64) -> $t {
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_one(&self, rng: &mut Rng64) -> $t {
                    *self.start() + (rng.next_f64() as $t) * (*self.end() - *self.start())
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    /// Stand-in for `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_one(&self, _rng: &mut Rng64) -> T {
            self.0.clone()
        }
    }

    /// Full-domain sampling for `any::<T>()`.
    pub trait ArbSample: Sized {
        fn arb_sample(rng: &mut Rng64) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbSample for $t {
                fn arb_sample(rng: &mut Rng64) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbSample for bool {
        fn arb_sample(rng: &mut Rng64) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbSample for f64 {
        fn arb_sample(rng: &mut Rng64) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        pub fn new() -> AnyStrategy<T> {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: ArbSample> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample_one(&self, rng: &mut Rng64) -> T {
            T::arb_sample(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::Rng64;

    /// Size specification: a fixed count or a range of counts.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut Rng64) -> usize {
            if self.hi <= self.lo {
                self.lo
            } else {
                self.lo + (rng.next_u64() as usize) % (self.hi - self.lo + 1)
            }
        }
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_one(&self, rng: &mut Rng64) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample_one(rng)).collect()
        }
    }

    /// Stand-in for `proptest::collection::hash_set`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn sample_one(&self, rng: &mut Rng64) -> std::collections::HashSet<S::Value> {
            let n = self.size.draw(rng);
            let mut out = std::collections::HashSet::new();
            // Bounded attempts: duplicates may make exact `n` unreachable.
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample_one(rng));
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Stand-in for `proptest::prelude::any`.
    pub fn any<T: crate::strategy::ArbSample>() -> crate::strategy::AnyStrategy<T> {
        crate::strategy::AnyStrategy::new()
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::Rng64::new(0x5EED ^ line!() as u64);
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample_one(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
