//! Offline API stub for `rand` 0.8 — see ../../README.md.
//!
//! Implements the slice of the `rand` API this workspace uses with a
//! splitmix64 generator. Deterministic per seed, but the value streams
//! differ from the real crate.

/// Core RNG interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

/// Range sampling support (`Rng::gen_range`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let frac = (rng.next_u64() >> 11) as $t
                    / (1u64 << 53) as $t;
                self.start + frac * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let frac = (rng.next_u64() >> 11) as $t
                    / (1u64 << 53) as $t;
                *self.start() + frac * (*self.end() - *self.start())
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        frac < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod seq {
    use crate::RngCore;

    /// Stand-in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
