#!/usr/bin/env bash
# Regenerate every committed table in results/ from the current tree.
#
# The table binaries are deterministic (fixed campaign seeds), so the
# captured outputs must match a fresh run of HEAD exactly; ci.sh uses this
# script with OUT_DIR pointed at a temp directory and diffs against the
# committed files to catch stale results.
#
# Usage:
#   devtools/regen-results.sh               # rewrite results/ in place
#   OUT_DIR=/tmp/x devtools/regen-results.sh  # write elsewhere (CI diff)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${OUT_DIR:-results}"
mkdir -p "$OUT_DIR"

if [[ "${TORPEDO_OFFLINE:-}" == "" ]]; then
  if ! cargo fetch >/dev/null 2>&1; then
    echo "regen-results: dependency fetch failed; falling back to offline stubs" >&2
    TORPEDO_OFFLINE=1
  else
    TORPEDO_OFFLINE=0
  fi
fi

run() {
  if [[ "$TORPEDO_OFFLINE" == "1" ]]; then
    devtools/offline-check.sh "$@"
  else
    cargo "$@"
  fi
}

BINS=(table_4_1 table_4_2 table_4_3 appendix_tables state_machines ablations)

echo "regen-results: building table binaries (release)"
build_args=(build --release -p torpedo-bench)
for bin in "${BINS[@]}"; do
  build_args+=(--bin "$bin")
done
run "${build_args[@]}"

for bin in "${BINS[@]}"; do
  echo "regen-results: $bin -> $OUT_DIR/$bin.txt"
  ./target/release/"$bin" > "$OUT_DIR/$bin.txt" 2>/dev/null
done

echo "regen-results: done"
