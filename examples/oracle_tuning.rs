//! Oracle tuning (§4.1): "we use these observations to tune the
//! implementation of our CPU Oracle." This example sweeps the Table 4.1
//! thresholds over labelled rounds — benign baselines vs known-adversarial
//! recreations — and reports false-positive / false-negative rates so a
//! user can pick thresholds for their own host model.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin oracle_tuning`

use torpedo_core::observer::{Observer, ObserverConfig};
use torpedo_kernel::{KernelConfig, Usecs};
use torpedo_oracle::observation::Observation;
use torpedo_oracle::{CpuOracle, CpuThresholds, Oracle};
use torpedo_prog::{build_table, deserialize, Program, SyscallDesc};

fn collect_rounds(table: &[SyscallDesc], programs: &[Program], rounds: usize) -> Vec<Observation> {
    let mut observer = Observer::new(
        KernelConfig::default(),
        ObserverConfig {
            window: Usecs::from_secs(2),
            executors: programs.len(),
            runtime: "runc".to_string(),
            ..ObserverConfig::default()
        },
    )
    .expect("observer boots");
    let mut out = Vec::new();
    for _ in 0..=rounds {
        let record = observer.round(table, programs).expect("round runs");
        out.push(record.observation);
    }
    out.remove(0); // top warm-up round
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();
    let benign = vec![
        deserialize("getpid()\nuname(0x0)\n", &table)?,
        deserialize("stat(&'/etc/passwd', 0x0)\n", &table)?,
        deserialize("getuid()\ntimes(0x0)\n", &table)?,
    ];
    let adversarial = vec![
        deserialize("sync()\n", &table)?,
        deserialize("socket(0x9, 0x3, 0x0)\n", &table)?,
        deserialize("rt_sigreturn()\n", &table)?,
    ];

    let benign_obs = collect_rounds(&table, &benign, 8);
    let adv_obs = collect_rounds(&table, &adversarial, 8);

    println!("sweeping idle-core ceiling (other thresholds at defaults)\n");
    println!(
        "{:<18} {:>14} {:>14}",
        "idle_core_max", "false-pos rate", "false-neg rate"
    );
    for idle_max in [6.0, 10.0, 16.0, 25.0, 40.0, 60.0] {
        let oracle = CpuOracle::with_thresholds(CpuThresholds {
            idle_core_max: idle_max,
            ..CpuThresholds::default()
        });
        let fp = benign_obs
            .iter()
            .filter(|o| !oracle.flag(o).is_empty())
            .count() as f64
            / benign_obs.len() as f64;
        let fn_ = adv_obs.iter().filter(|o| oracle.flag(o).is_empty()).count() as f64
            / adv_obs.len() as f64;
        println!(
            "{idle_max:<18.1} {:>13.0}% {:>13.0}%",
            fp * 100.0,
            fn_ * 100.0
        );
    }

    println!("\nsweeping fuzz-core floor\n");
    println!(
        "{:<18} {:>14} {:>14}",
        "fuzz_core_min", "false-pos rate", "false-neg rate"
    );
    for fuzz_min in [10.0, 25.0, 40.0, 60.0, 80.0] {
        let oracle = CpuOracle::with_thresholds(CpuThresholds {
            fuzz_core_min: fuzz_min,
            ..CpuThresholds::default()
        });
        let fp = benign_obs
            .iter()
            .filter(|o| !oracle.flag(o).is_empty())
            .count() as f64
            / benign_obs.len() as f64;
        let fn_ = adv_obs.iter().filter(|o| oracle.flag(o).is_empty()).count() as f64
            / adv_obs.len() as f64;
        println!(
            "{fuzz_min:<18.1} {:>13.0}% {:>13.0}%",
            fp * 100.0,
            fn_ * 100.0
        );
    }

    let default = CpuThresholds::default();
    println!(
        "\npaper-style defaults: fuzz_core_min={}, idle_core_max={}, total_margin={}, sysproc_max={}",
        default.fuzz_core_min, default.idle_core_max, default.total_margin, default.sysproc_max
    );
    Ok(())
}
