//! Tool-assisted minimization (§4.1.3, Algorithm 3): take a noisy trace
//! that hides an adversarial call, shrink it while preserving the observed
//! oracle violations, and confirm the root cause against the (simulated)
//! kernel function-graph trace — the full workflow a human operator runs
//! on a flagged program.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin minimize_trace`

use torpedo_core::confirm::confirm;
use torpedo_core::minimize::{minimize_with_oracle, ViolationHarness};
use torpedo_kernel::{KernelConfig, Usecs};
use torpedo_oracle::{CpuOracle, IoOracle, Oracle};
use torpedo_prog::{build_table, deserialize, serialize};

/// A Moonshine-ish trace padded with benign calls around the adversarial
/// `socket(0x9, …)` (valid-but-modular family → modprobe storm).
const NOISY: &str = "\
mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)
getuid()
r2 = socket(0x9, 0x3, 0x0)
uname(0x7f0000000100)
stat(&'/etc/passwd', 0x7f0000000200)
clock_gettime(0x0, 0x7f0000000300)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();
    let program = deserialize(NOISY, &table)?;
    println!("original program ({} calls):", program.len());
    print!("{}", serialize(&program, &table));

    for oracle in [&CpuOracle::new() as &dyn Oracle, &IoOracle::new()] {
        println!("\n== minimizing against the {} oracle ==", oracle.name());
        let harness = ViolationHarness::new(KernelConfig::default(), "runc");
        match minimize_with_oracle(&program, &table, oracle, &harness) {
            Some(result) => {
                println!(
                    "violations preserved: {:?}",
                    result
                        .kinds
                        .iter()
                        .map(|k| k.describe())
                        .collect::<Vec<_>>()
                );
                println!(
                    "minimized to {} call(s) in {} evaluations ({} removed):",
                    result.program.len(),
                    result.stats.evaluations,
                    result.stats.removed
                );
                print!("{}", serialize(&result.program, &table));
                let conf = confirm(
                    &result.program,
                    &table,
                    KernelConfig::default(),
                    "runc",
                    Usecs::from_secs(3),
                );
                println!(
                    "confirmation: charged {}, out-of-band {}, amplification {:.1}x",
                    conf.charged, conf.oob_total, conf.amplification
                );
                for cause in &conf.causes {
                    println!(
                        "  cause: {} via {}() — {} events{}",
                        cause.cause,
                        cause.syscall,
                        cause.events,
                        if cause.known { "" } else { "  [NEW FINDING]" }
                    );
                }
            }
            None => println!("no violations observed for this oracle"),
        }
    }
    Ok(())
}
