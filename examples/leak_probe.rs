//! The §2.4.1 coresidence probe: a beacon container modulates host load on
//! alternate rounds while a watcher samples `/proc/stat`. On a default
//! (native-runtime) host the non-namespaced counters leak the beacon; a
//! virtualized procfs hides it.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin leak_probe`

use torpedo_core::observer::{Observer, ObserverConfig};
use torpedo_kernel::leakcheck::{detect_coresidence, observed_busy_series, ProcView};
use torpedo_kernel::{KernelConfig, Usecs};
use torpedo_prog::{build_table, deserialize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();
    let busy = deserialize("getpid()\nuname(0x0)\ngetuid()\n", &table)?;
    let idle = deserialize("pause()\n", &table)?;
    let watcher = deserialize("clock_gettime(0x0, 0x0)\n", &table)?;

    let mut observer = Observer::new(
        KernelConfig::default(),
        ObserverConfig {
            window: Usecs::from_secs(1),
            executors: 2,
            runtime: "runc".to_string(),
            ..ObserverConfig::default()
        },
    )?;

    let beacon: Vec<bool> = (0..14).map(|i| i % 2 == 0).collect();
    println!(
        "beacon schedule: {}",
        beacon
            .iter()
            .map(|&b| if b { 'X' } else { '.' })
            .collect::<String>()
    );
    let mut rounds = Vec::new();
    for &on in &beacon {
        let programs = vec![
            watcher.clone(),
            if on { busy.clone() } else { idle.clone() },
        ];
        let rec = observer.round(&table, &programs)?;
        rounds.push(rec.observation.per_core.clone());
    }

    for (label, view) in [
        ("host /proc/stat (leaky)", ProcView::Host),
        ("namespaced procfs", ProcView::Namespaced),
    ] {
        let series = observed_busy_series(&rounds, view, &[0]);
        let verdict = detect_coresidence(&beacon, &series, 0.8);
        println!(
            "{label:<26} correlation {:+.3} → {}",
            verdict.correlation,
            if verdict.coresident {
                "CORESIDENT"
            } else {
                "no signal"
            }
        );
    }
    println!("\nthe non-namespaced pseudo-filesystem channel of §2.4.1 confirmed");
    Ok(())
}
