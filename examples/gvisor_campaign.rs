//! The gVisor campaign (the §4.4 experiment, scaled down): the same seeds
//! on the sandboxed runtime. Expected outcomes, as in the paper: *none* of
//! the runC adversarial patterns reproduce, utilization runs lower, and
//! the fuzzer instead finds container-killing `open(2)` bugs which are
//! reproduced and minimized automatically.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin gvisor_campaign`

use torpedo_core::campaign::{Campaign, CampaignConfig};
use torpedo_core::observer::ObserverConfig;
use torpedo_core::seeds::{default_denylist, SeedCorpus};
use torpedo_kernel::Usecs;
use torpedo_oracle::CpuOracle;
use torpedo_prog::{build_table, serialize, MutatePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();
    let texts = torpedo_moonshine::generate_corpus(24, 0xC0FFEE);
    let seeds = SeedCorpus::load(&texts, &table, &default_denylist())
        .map_err(|(i, e)| format!("seed {i}: {e}"))?;

    let config = CampaignConfig {
        observer: ObserverConfig {
            window: Usecs::from_secs(3),
            executors: 3,
            runtime: "runsc".to_string(),
            ..ObserverConfig::default()
        },
        mutate: MutatePolicy {
            denylist: default_denylist(),
            ..MutatePolicy::default()
        },
        max_rounds_per_batch: 10,
        ..CampaignConfig::default()
    };
    let campaign = Campaign::new(config, table.clone());
    let report = campaign.run(&seeds, &CpuOracle::new())?;

    println!(
        "gVisor campaign: {} rounds, {} flagged, {} container crashes",
        report.rounds_total,
        report.flagged.len(),
        report.crashes.len()
    );

    // §4.4.2: resource-utilization findings are expected to be absent.
    if report.flagged.is_empty() {
        println!("no adversarial resource patterns — matches §4.4.2");
    } else {
        println!(
            "note: {} resource flags (re-run solo to check reproducibility)",
            report.flagged.len()
        );
    }

    for (i, crash) in report.crashes.iter().enumerate() {
        println!("\ncrash #{i}: {}", crash.crash);
        println!("  reproduced: {}", crash.reproduced);
        if let Some(minimized) = &crash.minimized {
            println!("  minimized reproducer:");
            print!(
                "{}",
                torpedo_examples::indent(&serialize(minimized, &table), "    | ")
            );
        }
    }
    Ok(())
}
