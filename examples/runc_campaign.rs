//! A small runC fuzzing campaign (the §4.3 experiment, scaled down):
//! Moonshine-style seeds, 3 executors, CPU-oracle feedback, offline
//! flagging, oracle-guided minimization (Algorithm 3), and trace-based
//! confirmation of root causes.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin runc_campaign`

use torpedo_core::campaign::{Campaign, CampaignConfig};
use torpedo_core::confirm::confirm;
use torpedo_core::minimize::{minimize_with_oracle, ViolationHarness};
use torpedo_core::observer::ObserverConfig;
use torpedo_core::seeds::{default_denylist, SeedCorpus};
use torpedo_kernel::{KernelConfig, Usecs};
use torpedo_oracle::CpuOracle;
use torpedo_prog::{build_table, serialize, MutatePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();
    let texts = torpedo_moonshine::generate_corpus(24, 0xC0FFEE);
    let seeds = SeedCorpus::load(&texts, &table, &default_denylist())
        .map_err(|(i, e)| format!("seed {i}: {e}"))?;
    println!(
        "Loaded {} seeds ({} blocking calls filtered)",
        seeds.len(),
        seeds.filtered_calls.len()
    );

    let config = CampaignConfig {
        observer: ObserverConfig {
            window: Usecs::from_secs(3),
            executors: 3,
            runtime: "runc".to_string(),
            ..ObserverConfig::default()
        },
        mutate: MutatePolicy {
            denylist: default_denylist(),
            ..MutatePolicy::default()
        },
        max_rounds_per_batch: 10,
        ..CampaignConfig::default()
    };
    let oracle = CpuOracle::new();
    let campaign = Campaign::new(config, table.clone());
    let report = campaign.run(&seeds, &oracle)?;

    println!(
        "\nCampaign: {} rounds, {} corpus programs, {} coverage signals, {} flagged, {} crashes",
        report.rounds_total,
        report.corpus.len(),
        report.coverage_signals,
        report.flagged.len(),
        report.crashes.len()
    );

    // Minimize + confirm the top flagged findings.
    let harness = ViolationHarness::new(KernelConfig::default(), "runc");
    let mut confirmed = 0;
    for finding in report.flagged.iter().take(6) {
        torpedo_examples::print_finding(confirmed, finding, &table);
        match minimize_with_oracle(&finding.program, &table, &oracle, &harness) {
            Some(min) => {
                println!(
                    "   minimized to {} call(s): {}",
                    min.program.len(),
                    min.program.call_names(&table).join(", ")
                );
                let conf = confirm(
                    &min.program,
                    &table,
                    KernelConfig::default(),
                    "runc",
                    Usecs::from_secs(3),
                );
                for cause in &conf.causes {
                    println!(
                        "   cause: {} via {} ({} events, {} OOB, amplification {:.1}x, {})",
                        cause.cause,
                        cause.syscall,
                        cause.events,
                        cause.oob_cost,
                        conf.amplification,
                        if cause.known {
                            "reconfirms CCS'19"
                        } else {
                            "NEW"
                        }
                    );
                }
                confirmed += 1;
            }
            None => println!("   (did not reproduce solo — written off as noise)"),
        }
        println!();
    }
    println!("confirmed {confirmed} findings");
    println!(
        "\n{}",
        torpedo_core::stats::CampaignStats::from_report(&report).render()
    );
    print!(
        "{}",
        torpedo_examples::indent(
            &report
                .flagged
                .first()
                .map(|f| serialize(&f.program, &table))
                .unwrap_or_default(),
            "top finding | "
        )
    );
    Ok(())
}
