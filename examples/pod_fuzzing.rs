//! Kubernetes-style fuzzing (§5.2): deploy a fuzzing *pod* through the
//! kubelet layer instead of bare Docker containers, crash it with the
//! gVisor `open(2)` bug, watch the restart policy recover it, and emit the
//! §4.1.4-style C reproducer for the crash.
//!
//! Run with: `cargo run --release -p torpedo-examples --bin pod_fuzzing`

use torpedo_kernel::{Kernel, SyscallRequest, Usecs};
use torpedo_prog::{build_table, deserialize, generate_c, CGenOptions};
use torpedo_runtime::engine::Engine;
use torpedo_runtime::pods::{Kubelet, PodSpec, RestartPolicy};
use torpedo_runtime::spec::ContainerSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::with_defaults();
    let mut engine = Engine::new(&mut kernel);
    let mut kubelet = Kubelet::new();

    let spec = PodSpec::new("torpedo-fuzzer")
        .container(
            ContainerSpec::new("executor")
                .runtime_name("runsc")
                .cpuset_cpus(&[0])
                .cpus(1.0),
        )
        .container(
            ContainerSpec::new("collector")
                .runtime_name("runsc")
                .cpuset_cpus(&[1])
                .cpus(0.5),
        )
        .restart_policy(RestartPolicy::Always);
    let pod = kubelet.deploy(&mut kernel, &mut engine, spec)?;
    println!(
        "deployed pod '{}' with {} containers on gVisor",
        kubelet.pods()[pod].spec().name,
        kubelet.pods()[pod].containers().len()
    );

    kernel.begin_round(Usecs::from_secs(5));
    let executor = kubelet.pods()[pod].containers()[0].clone();

    // Drive the Appendix A.2.2 crash through the pod.
    let crash_req = SyscallRequest::new("open", [0, 0x680002, 0x20, 0, 0, 0])
        .with_path(0, "/lib/x86_64-Linux-gnu/libc.so.6");
    let exec = engine.exec(&mut kernel, &executor, crash_req)?;
    match &exec.crash {
        Some(crash) => println!("container crashed: {crash}"),
        None => println!("unexpected: no crash"),
    }
    println!(
        "pod phase before sync: {:?}",
        kubelet.phase(&engine, pod).unwrap()
    );
    let restarted = kubelet.sync(&mut kernel, &mut engine)?;
    println!(
        "kubelet sync restarted {restarted} container(s); restartCount = {}",
        kubelet.pods()[pod].restarts()
    );
    let ok = engine.exec(
        &mut kernel,
        &executor,
        SyscallRequest::new("getpid", [0; 6]),
    )?;
    println!("post-restart getpid() = {}", ok.outcome.retval);

    // Emit the C reproducer a human would file with the gVisor issue.
    let table = build_table();
    let program = deserialize(
        "open(&'/lib/x86_64-Linux-gnu/libc.so.6', 0x680002, 0x20)\n",
        &table,
    )?;
    println!("\n// --- crash reproducer (compare with Appendix A.2.2) ---");
    print!("{}", generate_c(&program, &table, &CGenOptions::default()));
    Ok(())
}
