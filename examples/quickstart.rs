//! Quickstart: boot the simulated host, deploy three fuzzing containers,
//! run one observation round with the paper's Appendix A.1.1 baseline
//! programs, and print the observer log table (compare with Table A.1).
//!
//! Run with: `cargo run -p torpedo-examples --bin quickstart`

use torpedo_core::observer::{Observer, ObserverConfig};
use torpedo_kernel::{procfs, KernelConfig, Usecs};
use torpedo_moonshine::APPENDIX_SEEDS;
use torpedo_oracle::{CpuOracle, Oracle};
use torpedo_prog::{build_table, deserialize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = build_table();

    // The three baseline programs of Appendix A.1.1.
    let programs = vec![
        deserialize(APPENDIX_SEEDS[0], &table)?,
        deserialize(APPENDIX_SEEDS[1], &table)?,
        deserialize(APPENDIX_SEEDS[2], &table)?,
    ];

    let mut observer = Observer::new(
        KernelConfig::default(),
        ObserverConfig {
            window: Usecs::from_secs(5),
            executors: 3,
            runtime: "runc".to_string(),
            ..ObserverConfig::default()
        },
    )?;

    println!("TORPEDO quickstart: 3 executors on runC, T = 5 s\n");
    // Round 1 warms the top sampler (it discards its first frame).
    observer.round(&table, &programs)?;
    let record = observer.round(&table, &programs)?;

    println!("Observer log (compare with Table A.1 of the paper):\n");
    print!("{}", procfs::render_table(&record.observation.per_core));

    let oracle = CpuOracle::new();
    let score = oracle.score(&record.observation);
    let violations = oracle.flag(&record.observation);
    println!("\nCPU oracle score (total utilization): {score:.2}%");
    if violations.is_empty() {
        println!("CPU oracle: no isolation-boundary violations (expected for baseline).");
    } else {
        for violation in &violations {
            println!("CPU oracle violation: {violation}");
        }
    }

    if let Some(top) = &record.observation.top {
        println!("\nTop daemon CPU (filtered categories, % of one core):");
        for entry in top.entries.iter().take(8) {
            println!("  {:<24} {:>6.2}%", entry.name, entry.cpu_percent);
        }
    }
    for (i, report) in record.reports.iter().enumerate() {
        println!(
            "executor {i}: {} executions, avg {} per execution",
            report.executions, report.avg_exec_time
        );
    }
    Ok(())
}
