//! Shared helpers for the TORPEDO examples.

use torpedo_core::campaign::FlaggedFinding;
use torpedo_prog::{serialize, SyscallDesc};

/// Print a flagged finding in a compact human-readable block.
pub fn print_finding(index: usize, finding: &FlaggedFinding, table: &[SyscallDesc]) {
    println!(
        "── finding #{index} (batch {}, round {}, score {:.1}) ──",
        finding.batch, finding.round, finding.score
    );
    for violation in finding.violations.iter() {
        println!("   violation: {violation}");
    }
    print!("{}", indent(&serialize(&finding.program, table), "   | "));
}

/// Indent every line of `text` with `prefix`.
pub fn indent(text: &str, prefix: &str) -> String {
    text.lines()
        .map(|line| format!("{prefix}{line}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn indent_prefixes_every_line() {
        let out = super::indent("a\nb\n", "> ");
        assert_eq!(out, "> a\n> b\n");
    }
}
