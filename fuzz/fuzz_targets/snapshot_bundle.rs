//! Fuzz the `torpedo-snapshot-v1` checkpoint bundle parser: size caps,
//! hash verification, and the typed-extraction layer must reject hostile
//! input without panicking.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if let Ok(text) = std::str::from_utf8(data) {
        let _ = torpedo_core::parse_snapshot(text);
    }
});
