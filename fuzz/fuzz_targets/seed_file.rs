//! Fuzz the seed-ingestion surfaces: the program deserializer, the seed
//! corpus loader (with the blocking-call denylist), and the
//! `torpedo-corpus-v1` importer.

#![no_main]

use libfuzzer_sys::fuzz_target;

fn table() -> &'static [torpedo_prog::SyscallDesc] {
    static TABLE: std::sync::OnceLock<Vec<torpedo_prog::SyscallDesc>> = std::sync::OnceLock::new();
    TABLE.get_or_init(torpedo_prog::build_table)
}

fuzz_target!(|data: &[u8]| {
    if let Ok(text) = std::str::from_utf8(data) {
        let denylist = torpedo_core::default_denylist();
        let _ = torpedo_prog::deserialize(text, table());
        let _ = torpedo_core::SeedCorpus::load(&[text], table(), &denylist);
        let _ = torpedo_core::import_corpus(text, table());
    }
});
