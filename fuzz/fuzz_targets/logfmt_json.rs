//! Fuzz the logfmt surfaces: the JSON value parser, the round-log parser,
//! and the metrics-snapshot parser. All three must return typed errors on
//! arbitrary input — any panic is a finding.

#![no_main]

use libfuzzer_sys::fuzz_target;

fn table() -> &'static [torpedo_prog::SyscallDesc] {
    static TABLE: std::sync::OnceLock<Vec<torpedo_prog::SyscallDesc>> = std::sync::OnceLock::new();
    TABLE.get_or_init(torpedo_prog::build_table)
}

fuzz_target!(|data: &[u8]| {
    if let Ok(text) = std::str::from_utf8(data) {
        let _ = torpedo_core::parse_json(text);
        let _ = torpedo_core::parse_log(text, table());
        let _ = torpedo_core::parse_metrics(text);
    }
});
