//! Fuzz the `torpedo-forensics-v1` flight-recorder bundle parser.

#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    if let Ok(text) = std::str::from_utf8(data) {
        let _ = torpedo_core::parse_bundle(text);
    }
});
